(* Pending-event set with two interchangeable backends.

   [Heap] is the classic array-backed binary min-heap the simulator
   started with, kept as the differential-testing reference: entries are
   compared by time first and by a monotonically increasing sequence
   number second, which yields stable FIFO behaviour for same-cycle
   events.

   [Wheel] is a calendar-queue / timing-wheel hybrid tuned for the
   discrete-event hot loop, where almost every event lands within a few
   hundred cycles of the clock: a "near" wheel of [wheel_size]
   power-of-two buckets (one simulated cycle per bucket) absorbs those
   in O(1), and a small overflow min-heap holds the far future. Both
   backends pop in exactly the same (time, seq) order, so a simulation
   is bit-identical under either.

   Allocation discipline (the point of the wheel): entries are mutable
   records chained through an intrusive [next] pointer (a physical
   self-loop marks the end of a list) and recycled through a per-queue
   freelist, so steady-state schedule/pop cycles allocate nothing. *)

type backend = Heap | Wheel

(* Placeholder written into vacated slots and recycled entries so the
   GC can reclaim popped payloads. The immediate 0 is a valid word of
   any type from the GC's point of view and is never read back: pops
   copy the payload out before the slot is cleared or recycled. *)
let absent : unit -> 'a = fun () -> Obj.magic 0

type 'a entry = {
  mutable time : int;
  mutable seq : int;
  mutable payload : 'a;
  mutable next : 'a entry;  (* slot chain / freelist; self-loop = nil *)
}

let make_entry time seq payload =
  let rec e = { time; seq; payload; next = e } in
  e

(* Near-wheel geometry: one bucket per cycle, [wheel_size] cycles of
   horizon. Delays in the simulator cluster well under this (L1 hits,
   NoC hops, memory latency ~100, backoffs up to ~512), so the overflow
   heap stays tiny. *)
let wheel_bits = 10
let wheel_size = 1 lsl wheel_bits
let wheel_mask = wheel_size - 1

type 'a t = {
  kind : backend;
  nil : 'a entry;  (* per-queue sentinel: empty slot / list end *)
  (* Insertion counter. Usually private to the queue, but the PDES
     split hands the same ref to every partition queue so that
     (time, seq) stays a *global* total order: merging N queues by
     (time, seq) then reproduces exactly the order a single shared
     queue would have popped. *)
  seq_src : int ref;
  mutable count : int;  (* total live entries, both regions *)
  (* Heap backend, and the wheel's far-overflow region. Orders entries
     by (time, seq); vacated slots are overwritten with [nil] so popped
     payloads do not stay reachable through the array. *)
  mutable harr : 'a entry array;
  mutable hsize : int;
  (* Wheel backend only. The near window is [limit - wheel_size, limit);
     slot [t land wheel_mask] holds exactly the events of cycle [t] in
     FIFO order. [cur] is the next candidate cycle: every near entry has
     time >= cur (adds below cur pull it back). *)
  slots_head : 'a entry array;
  slots_tail : 'a entry array;
  mutable near_count : int;
  mutable cur : int;
  mutable limit : int;
  (* Recycled entries, chained through [next], payloads cleared. *)
  mutable free : 'a entry;
}

let create ?(backend = Wheel) ?seq () =
  let nil = make_entry min_int (-1) (absent ()) in
  let wheel = backend = Wheel in
  {
    kind = backend;
    nil;
    seq_src = (match seq with Some r -> r | None -> ref 0);
    count = 0;
    harr = [||];
    hsize = 0;
    slots_head = (if wheel then Array.make wheel_size nil else [||]);
    slots_tail = (if wheel then Array.make wheel_size nil else [||]);
    near_count = 0;
    cur = 0;
    limit = wheel_size;
    free = nil;
  }

let backend q = q.kind
let is_empty q = q.count = 0
let length q = q.count

(* --- entry pool ------------------------------------------------------ *)

let alloc q ~time ~seq payload =
  let e = q.free in
  if e != q.nil then begin
    q.free <- e.next;
    e.next <- e;
    e.time <- time;
    e.seq <- seq;
    e.payload <- payload;
    e
  end
  else make_entry time seq payload

let recycle q e =
  e.payload <- absent ();
  e.next <- q.free;
  q.free <- e

(* --- binary heap on entries ------------------------------------------ *)

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let heap_swap q i j =
  let tmp = q.harr.(i) in
  q.harr.(i) <- q.harr.(j);
  q.harr.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt q.harr.(i) q.harr.(parent) then begin
      heap_swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.hsize && lt q.harr.(l) q.harr.(!smallest) then smallest := l;
  if r < q.hsize && lt q.harr.(r) q.harr.(!smallest) then smallest := r;
  if !smallest <> i then begin
    heap_swap q i !smallest;
    sift_down q !smallest
  end

let heap_push q e =
  let capacity = Array.length q.harr in
  if q.hsize = capacity then begin
    let ncap = Int.max 16 (2 * capacity) in
    let narr = Array.make ncap q.nil in
    Array.blit q.harr 0 narr 0 q.hsize;
    q.harr <- narr
  end;
  q.harr.(q.hsize) <- e;
  q.hsize <- q.hsize + 1;
  sift_up q (q.hsize - 1)

(* Remove and return the root. The vacated slot is overwritten with
   [nil]: leaving the old reference behind used to keep the popped
   entry — and its closure payload — live for the rest of the run. *)
let heap_pop q =
  let top = q.harr.(0) in
  q.hsize <- q.hsize - 1;
  if q.hsize > 0 then begin
    q.harr.(0) <- q.harr.(q.hsize);
    q.harr.(q.hsize) <- q.nil;
    sift_down q 0
  end
  else q.harr.(0) <- q.nil;
  top

(* --- wheel ----------------------------------------------------------- *)

(* Append to the FIFO chain of [e]'s cycle. Entries arrive here in
   nondecreasing seq order for any given cycle (direct adds are issued
   in seq order, and refills drain the far heap in (time, seq) order
   before any later direct add), so chain order is seq order. *)
let wheel_append q e =
  let i = e.time land wheel_mask in
  let tail = q.slots_tail.(i) in
  if tail == q.nil then q.slots_head.(i) <- e else tail.next <- e;
  q.slots_tail.(i) <- e;
  if e.time < q.cur then q.cur <- e.time;
  q.near_count <- q.near_count + 1

(* Move every far event that fits into the window ending at [q.limit]
   back into the wheel, in (time, seq) order. *)
let drain_far q =
  while q.hsize > 0 && q.harr.(0).time < q.limit do
    let e = heap_pop q in
    e.next <- e;
    wheel_append q e
  done

(* The near region emptied: recenter the window on the earliest far
   event. Only called with far events pending. *)
let rebase q =
  let tmin = q.harr.(0).time in
  q.cur <- tmin;
  q.limit <- tmin + wheel_size;
  drain_far q

(* An add landed below the current window (possible only through the
   raw queue API — the kernel never schedules in the past). Spill the
   whole near region into the far heap and rebuild the window around
   the new time. O(wheel_size + n log n), but never hit by [Sim]. *)
let reshuffle q ~time =
  for i = 0 to wheel_size - 1 do
    let e = ref q.slots_head.(i) in
    if !e != q.nil then begin
      q.slots_head.(i) <- q.nil;
      q.slots_tail.(i) <- q.nil;
      let continue = ref true in
      while !continue do
        let n = (!e).next in
        (!e).next <- !e;
        heap_push q !e;
        if n == !e then continue := false else e := n
      done
    end
  done;
  q.near_count <- 0;
  q.cur <- time;
  q.limit <- time + wheel_size;
  drain_far q

(* Advance [cur] to the next occupied slot. Requires near_count > 0;
   terminates within [wheel_size] steps because every near entry lives
   at a slot in [cur, limit). *)
let advance q =
  while q.slots_head.(q.cur land wheel_mask) == q.nil do
    q.cur <- q.cur + 1
  done

(* --- queue API ------------------------------------------------------- *)

let add q ~time payload =
  let seq = !(q.seq_src) in
  q.seq_src := seq + 1;
  q.count <- q.count + 1;
  match q.kind with
  | Heap -> heap_push q (alloc q ~time ~seq payload)
  | Wheel ->
    if time >= q.limit then heap_push q (alloc q ~time ~seq payload)
    else if time >= q.limit - wheel_size then
      wheel_append q (alloc q ~time ~seq payload)
    else begin
      reshuffle q ~time;
      wheel_append q (alloc q ~time ~seq payload)
    end

let no_event = min_int

(* Allocation-free peek: unlike [peek_time] there is no [option] box.
   For the wheel this also rebases/advances, so a following
   [pop_payload] finds the earliest event at [q.cur]. *)
let next_time q =
  if q.count = 0 then no_event
  else
    match q.kind with
    | Heap -> q.harr.(0).time
    | Wheel ->
      if q.near_count = 0 then rebase q;
      advance q;
      q.cur

(* Sequence number of the earliest pending event — the tie-break key
   the PDES merge needs alongside [next_time] when several partition
   queues agree on the earliest cycle. Positions the wheel exactly like
   [next_time] (rebase + advance are idempotent once positioned), so
   calling it right after [next_time] costs O(1). *)
let min_seq q =
  if q.count = 0 then max_int
  else
    match q.kind with
    | Heap -> q.harr.(0).seq
    | Wheel ->
      if q.near_count = 0 then rebase q;
      advance q;
      (q.slots_head.(q.cur land wheel_mask)).seq

(* Allocation-free pop: the payload is returned bare (no tuple, no
   [Some] — those cost 5 minor words per event in the kernel loop). *)
let pop_payload q =
  if q.count = 0 then invalid_arg "Event_queue.pop_payload: empty queue";
  q.count <- q.count - 1;
  match q.kind with
  | Heap ->
    let e = heap_pop q in
    let payload = e.payload in
    recycle q e;
    payload
  | Wheel ->
    if q.near_count = 0 then rebase q;
    advance q;
    let i = q.cur land wheel_mask in
    let e = q.slots_head.(i) in
    if e.next == e then begin
      q.slots_head.(i) <- q.nil;
      q.slots_tail.(i) <- q.nil
    end
    else begin
      q.slots_head.(i) <- e.next;
      e.next <- e
    end;
    q.near_count <- q.near_count - 1;
    let payload = e.payload in
    recycle q e;
    payload

(* --- schedule exploration hooks -------------------------------------- *)

(* Size of the "runnable set": the group of pending events sharing the
   earliest time. Only the explorer/fuzzer in lib/check calls this, so
   the O(n) heap scan is acceptable — checking runs use tiny models. *)
let runnable q =
  if q.count = 0 then 0
  else
    match q.kind with
    | Heap ->
      let tmin = q.harr.(0).time in
      let n = ref 0 in
      for i = 0 to q.hsize - 1 do
        if q.harr.(i).time = tmin then incr n
      done;
      !n
    | Wheel ->
      (* After rebase/advance the slot at [cur] holds exactly the
         events of the earliest cycle, in FIFO (= seq) order; far-heap
         entries all have time >= limit > cur. *)
      if q.near_count = 0 then rebase q;
      advance q;
      let n = ref 0 in
      let e = ref q.slots_head.(q.cur land wheel_mask) in
      let continue = ref (!e != q.nil) in
      while !continue do
        incr n;
        if (!e).next == !e then continue := false else e := (!e).next
      done;
      !n

(* Sequence number of the k-th member (0-based, insertion order) of the
   runnable set — the cross-queue rank key the partitioned kernel needs
   to drive a chooser over several queues at once: each queue's runnable
   set is internally seq-ordered, so merging the per-queue heads by this
   value enumerates the global runnable set in insertion order. Same
   checker-only O(k*n) cost profile as [pop_payload_nth]. *)
let runnable_seq q k =
  if q.count = 0 then invalid_arg "Event_queue.runnable_seq: empty queue";
  if k < 0 then invalid_arg "Event_queue.runnable_seq: negative index";
  match q.kind with
  | Heap ->
    let tmin = q.harr.(0).time in
    let last = ref (-1) in
    for _ = 0 to k do
      let best = ref (-1) in
      for i = 0 to q.hsize - 1 do
        let e = q.harr.(i) in
        if
          e.time = tmin && e.seq > !last
          && (!best = -1 || e.seq < q.harr.(!best).seq)
        then best := i
      done;
      if !best = -1 then
        invalid_arg "Event_queue.runnable_seq: index out of range";
      last := q.harr.(!best).seq
    done;
    !last
  | Wheel ->
    if q.near_count = 0 then rebase q;
    advance q;
    let e = ref q.slots_head.(q.cur land wheel_mask) in
    if !e == q.nil then invalid_arg "Event_queue.runnable_seq: index out of range";
    (try
       for _ = 1 to k do
         if (!e).next == !e then raise Exit;
         e := (!e).next
       done
     with Exit -> invalid_arg "Event_queue.runnable_seq: index out of range");
    (!e).seq

(* Remove the entry at arbitrary heap index [i]: swap with the last
   slot, then restore the heap property in whichever direction the
   replacement violates it. *)
let heap_remove_at q i =
  let e = q.harr.(i) in
  q.hsize <- q.hsize - 1;
  if i < q.hsize then begin
    q.harr.(i) <- q.harr.(q.hsize);
    q.harr.(q.hsize) <- q.nil;
    sift_down q i;
    sift_up q i
  end
  else q.harr.(i) <- q.nil;
  e

let pop_payload_nth q k =
  if q.count = 0 then invalid_arg "Event_queue.pop_payload_nth: empty queue";
  if k < 0 then invalid_arg "Event_queue.pop_payload_nth: negative index";
  if k = 0 then pop_payload q
  else
    match q.kind with
    | Heap ->
      (* Select the entry with the (k+1)-smallest seq among the
         min-time entries by repeated selection — O(k*n), fine for the
         tiny models the explorer drives. *)
      let tmin = q.harr.(0).time in
      let last = ref (-1) in
      let pick = ref (-1) in
      for _ = 0 to k do
        let best = ref (-1) in
        for i = 0 to q.hsize - 1 do
          let e = q.harr.(i) in
          if
            e.time = tmin && e.seq > !last
            && (!best = -1 || e.seq < q.harr.(!best).seq)
          then best := i
        done;
        if !best = -1 then
          invalid_arg "Event_queue.pop_payload_nth: index out of range";
        last := q.harr.(!best).seq;
        pick := !best
      done;
      q.count <- q.count - 1;
      let e = heap_remove_at q !pick in
      let payload = e.payload in
      recycle q e;
      payload
    | Wheel ->
      if q.near_count = 0 then rebase q;
      advance q;
      let i = q.cur land wheel_mask in
      (* Walk to the k-th node of the cycle's FIFO chain and unlink
         it, patching head/tail as needed. *)
      let prev = ref q.nil in
      let e = ref q.slots_head.(i) in
      (try
         for _ = 1 to k do
           if (!e).next == !e then raise Exit;
           prev := !e;
           e := (!e).next
         done
       with Exit ->
         invalid_arg "Event_queue.pop_payload_nth: index out of range");
      let node = !e in
      if !prev == q.nil then
        if node.next == node then begin
          q.slots_head.(i) <- q.nil;
          q.slots_tail.(i) <- q.nil
        end
        else q.slots_head.(i) <- node.next
      else if node.next == node then begin
        (!prev).next <- !prev;
        q.slots_tail.(i) <- !prev
      end
      else (!prev).next <- node.next;
      q.near_count <- q.near_count - 1;
      q.count <- q.count - 1;
      let payload = node.payload in
      recycle q node;
      payload

let pop q =
  let time = next_time q in
  if time = no_event then None else Some (time, pop_payload q)

let peek_time q =
  let time = next_time q in
  if time = no_event then None else Some time

let clear q =
  (match q.kind with
  | Heap -> ()
  | Wheel ->
    for i = 0 to wheel_size - 1 do
      let e = ref q.slots_head.(i) in
      if !e != q.nil then begin
        q.slots_head.(i) <- q.nil;
        q.slots_tail.(i) <- q.nil;
        let continue = ref true in
        while !continue do
          let n = (!e).next in
          recycle q !e;
          if n == !e then continue := false else e := n
        done
      end
    done;
    q.near_count <- 0;
    q.cur <- 0;
    q.limit <- wheel_size);
  while q.hsize > 0 do
    recycle q (heap_pop q)
  done;
  q.count <- 0
