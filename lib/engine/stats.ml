(* lint: allow hashtbl — the registries below key counters by name at
   setup time only; the hot path mutates the counter records directly. *)

type counter = { c_name : string; mutable c_value : int }

type accumulator = {
  a_name : string;
  mutable a_count : int;
  mutable a_sum : int;
  mutable a_min : int;
  mutable a_max : int;
}

type histogram = {
  h_name : string;
  (* bucket i counts samples with value < 2^i (and >= 2^(i-1)). *)
  mutable h_buckets : int array;
}

(* Log-linear "HDR-style" histogram: values below [sub] (= 32) get an
   exact unit bucket; above that, each power-of-two octave is split
   into 32 linear sub-buckets, giving <= ~3% relative error at any
   magnitude. 1856 buckets cover every non-negative OCaml int. *)

type hdr = {
  d_name : string;
  d_counts : int array;
  mutable d_count : int;
  mutable d_sum : int;
  mutable d_min : int;
  mutable d_max : int;
}

type group = {
  g_name : string;
  g_counters : (string, counter) Hashtbl.t;
  g_accumulators : (string, accumulator) Hashtbl.t;
  g_histograms : (string, histogram) Hashtbl.t;
  g_hdrs : (string, hdr) Hashtbl.t;
}

let group g_name =
  {
    g_name;
    g_counters = Hashtbl.create 16;
    g_accumulators = Hashtbl.create 16;
    g_histograms = Hashtbl.create 16;
    g_hdrs = Hashtbl.create 16;
  }

let counter g name =
  match Hashtbl.find_opt g.g_counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.add g.g_counters name c;
    c

let accumulator g name =
  match Hashtbl.find_opt g.g_accumulators name with
  | Some a -> a
  | None ->
    let a = { a_name = name; a_count = 0; a_sum = 0; a_min = 0; a_max = 0 } in
    Hashtbl.add g.g_accumulators name a;
    a

let histogram g name =
  match Hashtbl.find_opt g.g_histograms name with
  | Some h -> h
  | None ->
    let h = { h_name = name; h_buckets = Array.make 64 0 } in
    Hashtbl.add g.g_histograms name h;
    h

(* (56 octaves + the unit range) * 32 sub-buckets. *)
let hdr_buckets = 1856

let hdr g name =
  match Hashtbl.find_opt g.g_hdrs name with
  | Some d -> d
  | None ->
    let d =
      {
        d_name = name;
        d_counts = Array.make hdr_buckets 0;
        d_count = 0;
        d_sum = 0;
        d_min = max_int;
        d_max = min_int;
      }
    in
    Hashtbl.add g.g_hdrs name d;
    d

(* Index of the highest set bit of [v > 0]. *)
let floor_log2 v =
  let e = ref 0 in
  let v = ref v in
  if !v lsr 32 <> 0 then (e := !e + 32; v := !v lsr 32);
  if !v lsr 16 <> 0 then (e := !e + 16; v := !v lsr 16);
  if !v lsr 8 <> 0 then (e := !e + 8; v := !v lsr 8);
  if !v lsr 4 <> 0 then (e := !e + 4; v := !v lsr 4);
  if !v lsr 2 <> 0 then (e := !e + 2; v := !v lsr 2);
  if !v lsr 1 <> 0 then e := !e + 1;
  !e

let hdr_index v =
  if v < 32 then v
  else
    let e = floor_log2 v in
    ((e - 5) * 32) + (v lsr (e - 5))

(* Largest value mapping to bucket [i] (inclusive). *)
let hdr_bound i =
  if i < 32 then i
  else
    let e = (i / 32) + 4 in
    let m = (i mod 32) + 32 in
    ((m + 1) lsl (e - 5)) - 1

let record d v =
  let v = if v < 0 then 0 else v in
  let i = hdr_index v in
  let i = if i >= hdr_buckets then hdr_buckets - 1 else i in
  d.d_counts.(i) <- d.d_counts.(i) + 1;
  d.d_count <- d.d_count + 1;
  d.d_sum <- d.d_sum + v;
  if v < d.d_min then d.d_min <- v;
  if v > d.d_max then d.d_max <- v

let hdr_count d = d.d_count
let hdr_sum d = d.d_sum
let hdr_min d = if d.d_count = 0 then None else Some d.d_min
let hdr_max d = if d.d_count = 0 then None else Some d.d_max

let hdr_mean d =
  if d.d_count = 0 then 0.0 else float_of_int d.d_sum /. float_of_int d.d_count

(* The sample at rank ceil(p/100 * count), reported as its bucket's
   upper bound clamped to the exact observed min/max; 0 when empty. *)
let percentile d p =
  if d.d_count = 0 then 0
  else begin
    let p = if p < 0. then 0. else if p > 100. then 100. else p in
    let rank =
      let r = int_of_float (ceil (p /. 100. *. float_of_int d.d_count)) in
      if r < 1 then 1 else r
    in
    let acc = ref 0 in
    let i = ref 0 in
    while !acc < rank && !i < hdr_buckets do
      acc := !acc + d.d_counts.(!i);
      incr i
    done;
    let v = hdr_bound (!i - 1) in
    if v < d.d_min then d.d_min else if v > d.d_max then d.d_max else v
  end

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let value c = c.c_value

let sample a v =
  if a.a_count = 0 then begin
    a.a_min <- v;
    a.a_max <- v
  end
  else begin
    if v < a.a_min then a.a_min <- v;
    if v > a.a_max then a.a_max <- v
  end;
  a.a_count <- a.a_count + 1;
  a.a_sum <- a.a_sum + v

let count a = a.a_count
let sum a = a.a_sum
let min_sample a = if a.a_count = 0 then None else Some a.a_min
let max_sample a = if a.a_count = 0 then None else Some a.a_max

let mean a =
  if a.a_count = 0 then 0.0 else float_of_int a.a_sum /. float_of_int a.a_count

let bucket_index v =
  if v <= 0 then 0
  else
    let rec go i acc = if acc > v then i else go (i + 1) (acc * 2) in
    go 0 1

let observe h v =
  let i = Int.min (bucket_index v) (Array.length h.h_buckets - 1) in
  h.h_buckets.(i) <- h.h_buckets.(i) + 1

let buckets h =
  let out = ref [] in
  for i = Array.length h.h_buckets - 1 downto 0 do
    if h.h_buckets.(i) > 0 then
      out := ((1 lsl i) - 1, h.h_buckets.(i)) :: !out
  done;
  !out

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters g =
  sorted_bindings g.g_counters |> List.map (fun (k, c) -> (k, c.c_value))

let accumulators g = sorted_bindings g.g_accumulators
let hdrs g = sorted_bindings g.g_hdrs

let reset g =
  Hashtbl.iter
    (fun _ d ->
      Array.fill d.d_counts 0 (Array.length d.d_counts) 0;
      d.d_count <- 0;
      d.d_sum <- 0;
      d.d_min <- max_int;
      d.d_max <- min_int)
    g.g_hdrs;
  Hashtbl.iter (fun _ c -> c.c_value <- 0) g.g_counters;
  Hashtbl.iter
    (fun _ a ->
      a.a_count <- 0;
      a.a_sum <- 0;
      a.a_min <- 0;
      a.a_max <- 0)
    g.g_accumulators;
  Hashtbl.iter
    (fun _ h -> Array.fill h.h_buckets 0 (Array.length h.h_buckets) 0)
    g.g_histograms

let pp ppf g =
  Format.fprintf ppf "@[<v>[%s]" g.g_name;
  List.iter
    (fun (name, v) -> Format.fprintf ppf "@,%s = %d" name v)
    (counters g);
  List.iter
    (fun (name, a) ->
      Format.fprintf ppf "@,%s: n=%d sum=%d mean=%.2f" name a.a_count a.a_sum
        (mean a))
    (sorted_bindings g.g_accumulators);
  List.iter
    (fun (name, h) ->
      Format.fprintf ppf "@,%s:" name;
      List.iter
        (fun (bound, n) -> Format.fprintf ppf " <=%d:%d" bound n)
        (buckets h))
    (sorted_bindings g.g_histograms);
  List.iter
    (fun (name, d) ->
      Format.fprintf ppf "@,%s: n=%d mean=%.2f p50=%d p95=%d p99=%d" name
        d.d_count (hdr_mean d) (percentile d 50.) (percentile d 95.)
        (percentile d 99.))
    (sorted_bindings g.g_hdrs);
  Format.fprintf ppf "@]"
