(* lint: allow hashtbl — the registries below key counters by name at
   setup time only; the hot path mutates the counter records directly. *)

type counter = { c_name : string; mutable c_value : int }

type accumulator = {
  a_name : string;
  mutable a_count : int;
  mutable a_sum : int;
  mutable a_min : int;
  mutable a_max : int;
}

type histogram = {
  h_name : string;
  (* bucket i counts samples with value < 2^i (and >= 2^(i-1)). *)
  mutable h_buckets : int array;
}

type group = {
  g_name : string;
  g_counters : (string, counter) Hashtbl.t;
  g_accumulators : (string, accumulator) Hashtbl.t;
  g_histograms : (string, histogram) Hashtbl.t;
}

let group g_name =
  {
    g_name;
    g_counters = Hashtbl.create 16;
    g_accumulators = Hashtbl.create 16;
    g_histograms = Hashtbl.create 16;
  }

let counter g name =
  match Hashtbl.find_opt g.g_counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.add g.g_counters name c;
    c

let accumulator g name =
  match Hashtbl.find_opt g.g_accumulators name with
  | Some a -> a
  | None ->
    let a = { a_name = name; a_count = 0; a_sum = 0; a_min = 0; a_max = 0 } in
    Hashtbl.add g.g_accumulators name a;
    a

let histogram g name =
  match Hashtbl.find_opt g.g_histograms name with
  | Some h -> h
  | None ->
    let h = { h_name = name; h_buckets = Array.make 64 0 } in
    Hashtbl.add g.g_histograms name h;
    h

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let value c = c.c_value

let sample a v =
  if a.a_count = 0 then begin
    a.a_min <- v;
    a.a_max <- v
  end
  else begin
    if v < a.a_min then a.a_min <- v;
    if v > a.a_max then a.a_max <- v
  end;
  a.a_count <- a.a_count + 1;
  a.a_sum <- a.a_sum + v

let count a = a.a_count
let sum a = a.a_sum
let min_sample a = if a.a_count = 0 then None else Some a.a_min
let max_sample a = if a.a_count = 0 then None else Some a.a_max

let mean a =
  if a.a_count = 0 then 0.0 else float_of_int a.a_sum /. float_of_int a.a_count

let bucket_index v =
  if v <= 0 then 0
  else
    let rec go i acc = if acc > v then i else go (i + 1) (acc * 2) in
    go 0 1

let observe h v =
  let i = Int.min (bucket_index v) (Array.length h.h_buckets - 1) in
  h.h_buckets.(i) <- h.h_buckets.(i) + 1

let buckets h =
  let out = ref [] in
  for i = Array.length h.h_buckets - 1 downto 0 do
    if h.h_buckets.(i) > 0 then
      out := ((1 lsl i) - 1, h.h_buckets.(i)) :: !out
  done;
  !out

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters g =
  sorted_bindings g.g_counters |> List.map (fun (k, c) -> (k, c.c_value))

let accumulators g = sorted_bindings g.g_accumulators

let reset g =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) g.g_counters;
  Hashtbl.iter
    (fun _ a ->
      a.a_count <- 0;
      a.a_sum <- 0;
      a.a_min <- 0;
      a.a_max <- 0)
    g.g_accumulators;
  Hashtbl.iter
    (fun _ h -> Array.fill h.h_buckets 0 (Array.length h.h_buckets) 0)
    g.g_histograms

let pp ppf g =
  Format.fprintf ppf "@[<v>[%s]" g.g_name;
  List.iter
    (fun (name, v) -> Format.fprintf ppf "@,%s = %d" name v)
    (counters g);
  List.iter
    (fun (name, a) ->
      Format.fprintf ppf "@,%s: n=%d sum=%d mean=%.2f" name a.a_count a.a_sum
        (mean a))
    (sorted_bindings g.g_accumulators);
  List.iter
    (fun (name, h) ->
      Format.fprintf ppf "@,%s:" name;
      List.iter
        (fun (bound, n) -> Format.fprintf ppf " <=%d:%d" bound n)
        (buckets h))
    (sorted_bindings g.g_histograms);
  Format.fprintf ppf "@]"
