(** Structured transaction-event ledger.

    A fixed-capacity ring buffer of int-encoded event records that the
    simulator's layers (coherence protocol, HTM value layer, runtime)
    feed while a run executes. Recording is allocation-free and O(1):
    each record is four machine words (cycle, core, event code,
    argument) written into a preallocated flat array, so the ledger can
    stay attached to full-size runs without perturbing the measured
    execution. When the ring wraps, the oldest records are overwritten
    and counted in {!dropped}.

    The ledger is the machine-readable companion to the end-of-run
    aggregates in {!Stats}: the aggregates say {e how many} aborts of
    each class a run suffered, the ledger says {e when}, {e on which
    core} and {e in what interleaving} — the signal needed to diagnose
    fallback-path dynamics (who killed whom, how long the fallback lock
    was held, where NACK convoys formed). [Lk_sim.Tracing] aggregates
    it into abort-cause breakdown tables and exports it as a
    Chrome/Perfetto [trace.json].

    Event streams are deterministic: two runs of the same configuration
    — across event-queue backends and any [--jobs] value — produce
    byte-identical {!dump} output, which makes the ledger a
    differential-testing axis in its own right. *)

(** What happened. The [arg] recorded with each kind is:

    - [Tx_begin]: the attempt number for this critical section (0 on
      the first try).
    - [Tx_commit]: attempts the commit needed (= final attempt + 1).
    - [Tx_abort]: {!pack_abort} of the abort-reason code
      ([Lk_htm.Reason.index]), the aggressor core (-1 when
      environmental: capacity, fault) and the victim's attempt age
      (stall-excluded cycles of work in this attempt).
    - [Nack]: coherence layer sent a reject to [core]; {!pack_attr} of
      the holder that won the arbitration (or [-1] when the LLC
      overflow signatures rejected) and the requester's attempt
      age.
    - [Reject]: the runtime observed the reject reply at [core]; same
      argument convention as [Nack].
    - [Abort_kill]: coherence-level conflict abort (the paper's
      friendly fire): [core] is the victim, [arg] {!pack_attr} of the
      aggressor and the victim's attempt age.
    - [Park] / [Wake]: 0.
    - [Lock_acquire] / [Lock_release]: 0 (the fallback spinlock).
    - [Hl_begin]: 0. [Hl_end]: 1 if the section ran in STL mode,
      0 for TL.
    - [Switch_granted] / [Switch_denied]: 0.
    - [Spill]: the line spilled into the LLC overflow signatures.
    - [Spec_publish]: buffered speculative writes applied to committed
      memory. [Spec_discard]: {!pack_discard} of the writes dropped
      and the victim's attempt age.
    - [Sw_begin]: a TL2-style software transaction started; [arg] is
      its read version (the global-clock sample).
    - [Sw_commit]: it committed; [arg] is the version its write set was
      stamped with (0 for a read-only commit, which stamps nothing).
    - [Sw_abort]: it aborted; [arg] is the abort-reason code, like
      [Tx_abort].
    - [Clock_advance]: the global version clock moved; [arg] is the new
      value. *)
type kind =
  | Tx_begin
  | Tx_commit
  | Tx_abort
  | Nack
  | Reject
  | Abort_kill
  | Park
  | Wake
  | Lock_acquire
  | Lock_release
  | Hl_begin
  | Hl_end
  | Switch_granted
  | Switch_denied
  | Spill
  | Spec_publish
  | Spec_discard
  | Sw_begin
  | Sw_commit
  | Sw_abort
  | Clock_advance

val kinds : kind list
(** Every kind, in code order. *)

val kind_code : kind -> int
(** Stable integer code of a kind (position in {!kinds}). *)

val kind_of_code : int -> kind option

val kind_label : kind -> string
(** Short stable label ("xbegin", "nack", "kill", ...) used by the
    text dump and the Perfetto exporter. *)

(** {2 Argument packing}

    Conflict and abort records pack the responsible core and the
    victim's attempt age into the single int argument. "Age" is the
    victim's stall-excluded work clock: cycles since its current
    attempt began, minus any deliberate waits (reject back-off,
    parked time) — the cycles it actually spent computing. All
    codecs below are pure int arithmetic (allocation-free on the emit
    path); [who] is a core id in [[-1, 1022]] where [-1] means "no
    core" (environmental cause, overflow signatures), and [age] is a
    non-negative cycle count (negative values are clamped to 0). *)

val pack_attr : who:int -> age:int -> int
(** For [Nack] / [Reject] / [Abort_kill]. *)

val attr_who : int -> int
val attr_age : int -> int

val pack_abort : reason:int -> who:int -> age:int -> int
(** For [Tx_abort] / [Sw_abort]: the low bits keep the
    [Lk_htm.Reason.index] code so reason decoding stays where it was. *)

val abort_reason : int -> int
val abort_who : int -> int
val abort_age : int -> int

val pack_discard : writes:int -> age:int -> int
(** For [Spec_discard]: discarded-write count (saturating at 65535)
    plus the victim's attempt age. *)

val discard_writes : int -> int
val discard_age : int -> int

type t

val create : ?capacity:int -> Sim.t -> t
(** [create ?capacity sim] makes an empty ledger that reads record
    timestamps from [sim]'s clock. Default capacity: 65536 records
    (2 MiB); [capacity] must be positive. *)

val emit : t -> core:int -> kind -> arg:int -> unit
(** Record one event at the current simulated cycle. Allocation-free;
    overwrites the oldest record when the ring is full. When a sink or
    tap is installed it is called with the same record after it is
    stored (sink first). *)

val set_sink :
  t -> (time:int -> core:int -> kind:kind -> arg:int -> unit) option -> unit
(** Install (or clear) a live tap called from {!emit} after each record
    is stored. This is the invariant sanitizer's event-level observation
    point ([lockiller.check]): emission sites mark semantically
    meaningful protocol transitions (commits, parks, lock hand-offs), so
    a sink checks exactly where violations can first appear. [None]
    (the default) costs one branch per emit. *)

val set_tap :
  t -> (time:int -> core:int -> kind:kind -> arg:int -> unit) option -> unit
(** A second, independent live tap with the same contract as
    {!set_sink} (called after it). The causal profiler's streaming
    fold uses this slot, so profiling can run alongside the invariant
    sanitizer: records reach the tap even when ring wraparound later
    overwrites them. *)

val capacity : t -> int

val recorded : t -> int
(** Total events emitted, including overwritten ones. *)

val length : t -> int
(** Records currently retained ([min recorded capacity]). *)

val dropped : t -> int
(** Records lost to wraparound ([recorded - length]). *)

val clear : t -> unit

val iter :
  t -> (time:int -> core:int -> kind:kind -> arg:int -> unit) -> unit
(** Visit every retained record, oldest first, without allocating
    per-record structures. *)

type entry = { time : int; core : int; kind : kind; arg : int }

val entries : t -> entry list
(** The retained records, oldest first (convenience; allocates). *)

val pp_entry : Format.formatter -> entry -> unit

val dump : ?limit:int -> Format.formatter -> t -> unit
(** One line per retained record — ["<time> <core> <label> <arg>"] —
    oldest first, preceded by a drop notice when the ring wrapped.
    [limit] keeps only the trailing records. The output is
    deterministic and byte-stable, so differential tests compare it
    directly. *)
