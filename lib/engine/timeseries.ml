(* A fixed-capacity ring of time-stamped gauge rows, following the
   Ledger discipline: one flat preallocated int array, no allocation
   on the recording path, wraparound keeps the trailing rows and
   counts how many earlier ones were dropped.

   Each row is [1 + width] machine words: the sample time followed by
   one slot per channel. Producers stage values into a scratch row
   with [set] and then [commit] the whole row at once, so a sample is
   always internally consistent even when several subsystems feed it. *)

type t = {
  channels : string array;
  width : int;
  cap : int;
  data : int array;  (* (width + 1) * cap slots: time, then values *)
  scratch : int array;  (* width slots, staged by [set] *)
  mutable next : int;  (* total rows committed *)
}

let create ?(capacity = 4096) ~channels () =
  if capacity <= 0 then
    invalid_arg "Timeseries.create: capacity must be positive";
  let channels = Array.of_list channels in
  let width = Array.length channels in
  if width = 0 then
    invalid_arg "Timeseries.create: at least one channel required";
  {
    channels;
    width;
    cap = capacity;
    data = Array.make ((width + 1) * capacity) 0;
    scratch = Array.make width 0;
    next = 0;
  }

let channels t = Array.to_list t.channels
let width t = t.width
let capacity t = t.cap
let recorded t = t.next
let length t = Int.min t.next t.cap
let dropped t = Int.max 0 (t.next - t.cap)

let set t ch v =
  if ch < 0 || ch >= t.width then invalid_arg "Timeseries.set: bad channel";
  t.scratch.(ch) <- v

let commit t ~time =
  let base = (t.width + 1) * (t.next mod t.cap) in
  t.data.(base) <- time;
  Array.blit t.scratch 0 t.data (base + 1) t.width;
  t.next <- t.next + 1

let clear t =
  Array.fill t.data 0 (Array.length t.data) 0;
  Array.fill t.scratch 0 t.width 0;
  t.next <- 0

(* The row array handed to [iter]'s callback is reused between calls:
   consumers must copy it if they keep it. *)
let iter t f =
  let row = Array.make t.width 0 in
  let first = Int.max 0 (t.next - t.cap) in
  for i = first to t.next - 1 do
    let base = (t.width + 1) * (i mod t.cap) in
    Array.blit t.data (base + 1) row 0 t.width;
    f ~time:t.data.(base) ~row
  done

let get t ~sample ~channel =
  let n = length t in
  if sample < 0 || sample >= n then invalid_arg "Timeseries.get: bad sample";
  if channel < 0 || channel >= t.width then
    invalid_arg "Timeseries.get: bad channel";
  let first = Int.max 0 (t.next - t.cap) in
  let i = first + sample in
  t.data.(((t.width + 1) * (i mod t.cap)) + channel + 1)

let time t ~sample =
  let n = length t in
  if sample < 0 || sample >= n then invalid_arg "Timeseries.time: bad sample";
  let first = Int.max 0 (t.next - t.cap) in
  let i = first + sample in
  t.data.((t.width + 1) * (i mod t.cap))

let dump ppf t =
  if dropped t > 0 then
    Format.fprintf ppf "# %d earlier samples dropped@." (dropped t);
  Format.fprintf ppf "time";
  Array.iter (fun c -> Format.fprintf ppf " %s" c) t.channels;
  Format.fprintf ppf "@.";
  iter t (fun ~time ~row ->
      Format.fprintf ppf "%d" time;
      Array.iter (fun v -> Format.fprintf ppf " %d" v) row;
      Format.fprintf ppf "@.")
