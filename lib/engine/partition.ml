(* Contiguous block partition of [items] indices across [domains]
   blocks. Block [b] covers [b*items/domains, (b+1)*items/domains), so
   block sizes differ by at most one and neighbouring items — which in
   the machine model are neighbouring mesh tiles, the ones that talk
   most — land in the same block. Pure integer arithmetic: no tables,
   no allocation, trivially the same mapping on every domain. *)

type t = { items : int; domains : int }

let create ~items ~domains =
  if items <= 0 then invalid_arg "Partition.create: items must be positive";
  if domains <= 0 then invalid_arg "Partition.create: domains must be positive";
  (* More blocks than items would leave empty blocks; clamp instead of
     erroring so callers can pass --pdes-domains 4 to a 2-core machine. *)
  { items; domains = (if domains > items then items else domains) }

let items t = t.items
let domains t = t.domains

(* Inverse of [bounds]: the unique [b] with
   b*items/domains <= i < (b+1)*items/domains. *)
let of_item t i =
  if i < 0 || i >= t.items then invalid_arg "Partition.of_item: out of range";
  (((i + 1) * t.domains) - 1) / t.items

let bounds t b =
  if b < 0 || b >= t.domains then invalid_arg "Partition.bounds: out of range";
  (b * t.items / t.domains, (b + 1) * t.items / t.domains)

let size t b =
  let lo, hi = bounds t b in
  hi - lo
