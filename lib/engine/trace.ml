let src name = Logs.Src.create ("lockiller." ^ name)

let setup ?(level = Logs.Debug) () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some level)

(* The level test must come before any formatting: [kasprintf] renders
   its arguments eagerly, so guarding inside the [Logs.debug] closure
   would still pay the full string build on every rejected message. The
   disabled path consumes the format arguments with [ikfprintf], which
   formats nothing and allocates nothing. *)
let debugf src ~cycle fmt =
  match Logs.Src.level src with
  | Some Logs.Debug ->
    Format.kasprintf
      (fun s -> Logs.debug ~src (fun m -> m "[%d] %s" cycle s))
      fmt
  | Some (Logs.App | Logs.Error | Logs.Warning | Logs.Info) | None ->
    Format.ikfprintf ignore Format.str_formatter fmt
