(** Configuration knobs of the transactional systems in Table II.

    The paper composes its systems from: the recovery mechanism
    (reject/NACK support), a requester-side policy for rejected
    requests, a transaction priority scheme, the HTMLock mechanism and
    the switchingMode mechanism. *)

(** What a requester does when its conflicting request is withdrawn by
    the recovery mechanism (Section III-A: "abort directly, pause for
    a fixed period before retrying, or wait for a wake-up"). *)
type reject_policy =
  | Self_abort  (** Abort the requesting transaction ("SelfAbort"). *)
  | Retry_later of int
      (** Reissue after a fixed pause in cycles ("SelfRetryLater"). *)
  | Wait_wakeup
      (** Park until the rejector commits or aborts ("WaitWakeup"). *)

(** Global transaction priority scheme carried on requests. *)
type priority_policy =
  | No_priority
      (** All transactions tie; the lower core id wins (the paper's
          tie-break). Used by LockillerTM-RWL. *)
  | Insts_based
      (** Committed-instructions-based dynamic priority: a transaction
          that re-executes after an abort restarts at the lowest
          priority (the paper's scheme). *)
  | Progression_based
      (** LosaTM's scheme: progress through the transaction body. *)
  | Static_based
      (** A priority fixed before the transaction starts and unchanged
          across its retries (the paper's Section III-A alternative:
          no priority inversion, but "selecting a reasonable priority
          is difficult"). Implemented as a per-(core, transaction)
          pseudo-random draw. *)

(** Spinlock implementation for coarse-grained locking (ablation of the
    CGL baseline; the fallback path always uses the paper's
    test-and-set idiom of Listing 1). *)
type lock_impl =
  | Ttas  (** Test-and-test-and-set with bounded exponential backoff. *)
  | Ticket
      (** FIFO ticket lock: a fetch-and-increment ticket plus a
          now-serving counter on a separate line; fair and free of
          release-time RMW storms. *)

type retry = {
  max_retries : int;
      (** HTM attempts before taking the fallback path (Listing 1's
          TME_MAX_RETRIES). *)
  backoff_base : int;
      (** Cycles of exponential backoff unit between HTM retries. *)
  backoff_cap : int;  (** Upper bound on a single backoff pause. *)
}

val default_retry : retry

val backoff_delay : retry -> attempt:int -> int
(** Deterministic bounded exponential backoff for the [attempt]-th
    retry (0-based). *)

val pp_reject_policy : Format.formatter -> reject_policy -> unit
val pp_priority_policy : Format.formatter -> priority_policy -> unit
val pp_lock_impl : Format.formatter -> lock_impl -> unit
