lib/htm/reason.mli: Format Lk_coherence
