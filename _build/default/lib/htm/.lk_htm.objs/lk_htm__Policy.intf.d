lib/htm/policy.mli: Format
