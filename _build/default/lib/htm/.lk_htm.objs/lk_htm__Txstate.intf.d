lib/htm/txstate.mli: Format Lk_coherence Reason
