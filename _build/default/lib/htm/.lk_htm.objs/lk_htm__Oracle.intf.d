lib/htm/oracle.mli: Format Lk_coherence
