lib/htm/store.mli: Lk_coherence
