lib/htm/store.ml: Array Hashtbl
