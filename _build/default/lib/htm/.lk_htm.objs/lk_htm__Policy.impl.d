lib/htm/policy.ml: Format
