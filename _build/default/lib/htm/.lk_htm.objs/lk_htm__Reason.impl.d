lib/htm/reason.ml: Format Lk_coherence
