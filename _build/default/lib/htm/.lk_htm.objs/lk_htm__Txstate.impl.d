lib/htm/txstate.ml: Format Lk_coherence Reason
