lib/htm/oracle.ml: Format Hashtbl List Lk_coherence Option
