type addr = int

type t = {
  mem : (addr, int) Hashtbl.t;
  buffers : (addr, int) Hashtbl.t array;
}

let create ~cores =
  if cores <= 0 then invalid_arg "Store.create: cores must be positive";
  {
    mem = Hashtbl.create 4096;
    buffers = Array.init cores (fun _ -> Hashtbl.create 64);
  }

let committed t addr =
  match Hashtbl.find_opt t.mem addr with Some v -> v | None -> 0

let poke t addr v = Hashtbl.replace t.mem addr v

let read t ~core ~speculative addr =
  if speculative then
    match Hashtbl.find_opt t.buffers.(core) addr with
    | Some v -> v
    | None -> committed t addr
  else committed t addr

let write t ~core ~speculative addr v =
  if speculative then Hashtbl.replace t.buffers.(core) addr v
  else Hashtbl.replace t.mem addr v

let commit t ~core =
  let buf = t.buffers.(core) in
  let n = Hashtbl.length buf in
  Hashtbl.iter (fun addr v -> Hashtbl.replace t.mem addr v) buf;
  Hashtbl.reset buf;
  n

let discard t ~core =
  let buf = t.buffers.(core) in
  let n = Hashtbl.length buf in
  Hashtbl.reset buf;
  n

let buffered t ~core = Hashtbl.length t.buffers.(core)

let footprint t = Hashtbl.length t.mem
