let line_bits = 6
let line_size = 1 lsl line_bits

let line_of_byte b = b asr line_bits
let byte_of_line l = l lsl line_bits

let home_of_line ~tiles l =
  if tiles <= 0 then invalid_arg "Addr.home_of_line: tiles must be positive";
  l mod tiles

let lines_of_range ~first_byte ~bytes =
  if bytes <= 0 then invalid_arg "Addr.lines_of_range: bytes must be positive";
  let first = line_of_byte first_byte in
  let last = line_of_byte (first_byte + bytes - 1) in
  List.init (last - first + 1) (fun i -> first + i)
