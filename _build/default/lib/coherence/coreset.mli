(** Compact sets of core ids (directory sharer lists).

    Backed by a single [int] bitset, which caps the system at 62 cores —
    comfortably above the paper's 32-core machine. *)

type t

val max_cores : int

val empty : t
val singleton : Types.core_id -> t
val add : Types.core_id -> t -> t
val remove : Types.core_id -> t -> t
val mem : Types.core_id -> t -> bool
val is_empty : t -> bool
val cardinal : t -> int
val elements : t -> Types.core_id list
(** Ascending order. *)

val iter : (Types.core_id -> unit) -> t -> unit
val fold : (Types.core_id -> 'a -> 'a) -> t -> 'a -> 'a
val of_list : Types.core_id list -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
