lib/coherence/llc.mli: Coreset Types
