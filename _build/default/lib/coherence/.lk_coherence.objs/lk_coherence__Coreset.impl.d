lib/coherence/coreset.ml: Format List Printf String
