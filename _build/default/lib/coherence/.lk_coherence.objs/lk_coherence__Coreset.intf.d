lib/coherence/coreset.mli: Format Types
