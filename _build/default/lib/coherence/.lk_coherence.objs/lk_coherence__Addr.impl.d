lib/coherence/addr.ml: List
