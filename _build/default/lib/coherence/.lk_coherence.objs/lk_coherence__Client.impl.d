lib/coherence/client.ml: L1_cache Types
