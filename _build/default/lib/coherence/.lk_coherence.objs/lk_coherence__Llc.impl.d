lib/coherence/llc.ml: Addr Array Coreset Option Types
