lib/coherence/l1_cache.ml: Addr Array Hashtbl List Option Types
