lib/coherence/addr.mli: Types
