lib/coherence/l1_cache.mli: Types
