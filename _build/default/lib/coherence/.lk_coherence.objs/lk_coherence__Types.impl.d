lib/coherence/types.ml: Format
