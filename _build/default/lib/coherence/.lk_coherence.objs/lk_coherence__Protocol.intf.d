lib/coherence/protocol.mli: Client L1_cache Lk_engine Lk_mesh Llc Types
