lib/coherence/protocol.ml: Addr Array Client Coreset Format Hashtbl L1_cache List Lk_engine Lk_mesh Llc Printf Queue Types
