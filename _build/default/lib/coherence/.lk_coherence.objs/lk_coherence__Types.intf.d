lib/coherence/types.mli: Format
