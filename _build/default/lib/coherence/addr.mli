(** Address arithmetic: byte addresses, cache lines, home banks.

    The LLC is banked one bank per tile; a line's home bank is the
    low-order interleaving [line mod tiles], the standard layout for
    tiled CMPs (and what gem5's Ruby uses for S-NUCA). *)

val line_bits : int
(** log2 of the line size; Table I fixes lines at 64 bytes. *)

val line_size : int

val line_of_byte : int -> Types.line
(** Cache line containing a byte address. *)

val byte_of_line : Types.line -> int
(** First byte of a line. *)

val home_of_line : tiles:int -> Types.line -> int
(** Home tile (LLC bank) of a line. *)

val lines_of_range : first_byte:int -> bytes:int -> Types.line list
(** All lines touched by the byte range; [bytes] must be positive. *)
