(** Transaction-lifecycle event trace.

    A lightweight, bounded recorder for the runtime's interesting
    moments — transaction begins, commits, aborts (with reason),
    rejects, parks and wake-ups, HTMLock entries/exits, switchingMode
    attempts. Intended for debugging simulations and for the CLI's
    [--trace] output; recording is O(1) per event into a ring buffer,
    so it can stay on for full-size runs. *)

type event =
  | Xbegin
  | Commit
  | Abort of Lk_htm.Reason.t
  | Rejected of { by : Lk_coherence.Types.core_id option }
  | Parked
  | Woken
  | Hlbegin  (** Entered TL mode. *)
  | Hlend of { was_stl : bool }
  | Switch_granted
  | Switch_denied
  | Lock_acquired
  | Lock_released

type entry = {
  time : int;
  core : Lk_coherence.Types.core_id;
  event : event;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity: 65536 entries; older entries are overwritten. *)

val record : t -> time:int -> core:Lk_coherence.Types.core_id -> event -> unit

val entries : t -> entry list
(** Oldest first (at most [capacity]). *)

val recorded : t -> int
(** Total events seen, including overwritten ones. *)

val dropped : t -> int

val clear : t -> unit

val event_label : event -> string
val pp_entry : Format.formatter -> entry -> unit

val dump : ?limit:int -> Format.formatter -> t -> unit
(** Print the last [limit] (default all retained) entries, one per
    line. *)
