type t = {
  bits : Bytes.t;
  mask : int;
  hashes : int;
  mutable population : int;
  mutable insertions : int;
}

let create ?(bits = 2048) ?(hashes = 4) () =
  if bits <= 0 || bits land (bits - 1) <> 0 then
    invalid_arg "Signature.create: bits must be a power of two";
  if hashes <= 0 then invalid_arg "Signature.create: hashes must be positive";
  {
    bits = Bytes.make (bits / 8) '\000';
    mask = bits - 1;
    hashes;
    population = 0;
    insertions = 0;
  }

(* Two independent mixes combined as h1 + i*h2 (Kirsch-Mitzenmacher). *)
let mix1 x =
  let x = x * 0x9E3779B1 land max_int in
  x lxor (x lsr 16)

let mix2 x =
  let x = x * 0x85EBCA77 land max_int in
  (x lxor (x lsr 13)) lor 1

let bit_index t line i = (mix1 line + (i * mix2 line)) land t.mask

let get_bit t idx = Char.code (Bytes.get t.bits (idx lsr 3)) land (1 lsl (idx land 7)) <> 0

let set_bit t idx =
  if not (get_bit t idx) then begin
    let byte = Char.code (Bytes.get t.bits (idx lsr 3)) in
    Bytes.set t.bits (idx lsr 3) (Char.chr (byte lor (1 lsl (idx land 7))));
    t.population <- t.population + 1
  end

let add t line =
  t.insertions <- t.insertions + 1;
  for i = 0 to t.hashes - 1 do
    set_bit t (bit_index t line i)
  done

let test t line =
  let rec go i = i >= t.hashes || (get_bit t (bit_index t line i) && go (i + 1)) in
  t.insertions > 0 && go 0

let clear t =
  Bytes.fill t.bits 0 (Bytes.length t.bits) '\000';
  t.population <- 0;
  t.insertions <- 0

let population t = t.population
let insertions t = t.insertions
let is_empty t = t.insertions = 0
