(** The evaluated systems of Table II.

    Every system is a composition of: the concurrency substrate (coarse
    locking or best-effort HTM), the recovery mechanism, the requester
    policy after a reject, the priority scheme, the HTMLock mechanism
    and the switchingMode mechanism. *)

type kind =
  | Cgl  (** Coarse-grained locking, same critical-section granularity. *)
  | Htm  (** Best-effort HTM with a fallback path. *)

type t = {
  name : string;
  kind : kind;
  recovery : bool;  (** NACK/reject support in the cache controllers. *)
  reject_policy : Lk_htm.Policy.reject_policy;
  priority : Lk_htm.Policy.priority_policy;
  htmlock : bool;  (** Lock transactions run concurrently with HTM. *)
  switching : bool;  (** Proactive switch to HTMLock mode on overflow. *)
  retry : Lk_htm.Policy.retry;
  lock : Lk_htm.Policy.lock_impl;
      (** Spinlock used by the CGL baseline (the fallback path always
          follows Listing 1's test-and-set idiom). *)
}

val cgl : t

val baseline : t
(** Best-effort HTM, requester-win. *)

val losa_safu : t
(** LosaTM without the false-sharing and capacity-overflow
    optimisations: NACK-based recovery with progression-based priority
    and wake-up (the paper's comparison target). *)

val lockiller_rai : t
(** Baseline + Recovery + SelfAbort + InstsBased. *)

val lockiller_rri : t
(** Baseline + Recovery + SelfRetryLater + InstsBased. *)

val lockiller_rwi : t
(** Baseline + Recovery + WaitWakeup + InstsBased. *)

val lockiller_rwl : t
(** Baseline + Recovery + WaitWakeup + HTMLock. *)

val lockiller_rwil : t
(** LockillerTM-RWI + HTMLock. *)

val lockiller : t
(** LockillerTM-RWI + HTMLock + SwitchingMode. *)

val all : t list
(** Table II order. *)

val cgl_ticket : t
(** CGL with a fair FIFO ticket lock instead of TTAS — an ablation of
    the locking baseline itself (not part of Table II). *)

val lockiller_rws : t
(** LockillerTM-RWI with statically assigned priorities — the paper's
    Section III-A alternative, for the ablation study (not part of
    Table II). *)

val extras : t list
(** The ablation-only systems above. *)

val find : string -> t option
(** Case-insensitive lookup by name, over Table II and the extras. *)

val validate : t -> (unit, string) result
(** Sanity rules: HTMLock requires recovery (lock transactions are
    protected by rejects); switchingMode requires HTMLock; CGL ignores
    every HTM knob. *)

val pp : Format.formatter -> t -> unit
