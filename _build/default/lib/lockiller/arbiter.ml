type t = {
  mutable holder : Lk_coherence.Types.core_id option;
  mutable grants : int;
  mutable denials : int;
}

let create () = { holder = None; grants = 0; denials = 0 }

let holder t = t.holder

let try_acquire t core =
  match t.holder with
  | None ->
    t.holder <- Some core;
    t.grants <- t.grants + 1;
    true
  | Some h when h = core -> true
  | Some _ ->
    t.denials <- t.denials + 1;
    false

let release t core =
  match t.holder with
  | Some h when h = core -> t.holder <- None
  | Some _ | None ->
    invalid_arg "Arbiter.release: caller does not hold the authorization"

let grants t = t.grants
let denials t = t.denials
