type event =
  | Xbegin
  | Commit
  | Abort of Lk_htm.Reason.t
  | Rejected of { by : Lk_coherence.Types.core_id option }
  | Parked
  | Woken
  | Hlbegin
  | Hlend of { was_stl : bool }
  | Switch_granted
  | Switch_denied
  | Lock_acquired
  | Lock_released

type entry = { time : int; core : Lk_coherence.Types.core_id; event : event }

type t = {
  ring : entry option array;
  mutable next : int;  (* total recorded *)
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Txtrace.create: capacity must be positive";
  { ring = Array.make capacity None; next = 0 }

let record t ~time ~core event =
  t.ring.(t.next mod Array.length t.ring) <- Some { time; core; event };
  t.next <- t.next + 1

let recorded t = t.next

let dropped t = max 0 (t.next - Array.length t.ring)

let entries t =
  let n = Array.length t.ring in
  let first = max 0 (t.next - n) in
  List.init (t.next - first) (fun i ->
      match t.ring.((first + i) mod n) with
      | Some e -> e
      | None -> assert false)

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.next <- 0

let event_label = function
  | Xbegin -> "xbegin"
  | Commit -> "commit"
  | Abort r -> "abort:" ^ Lk_htm.Reason.label r
  | Rejected { by = Some c } -> Printf.sprintf "rejected(by %d)" c
  | Rejected { by = None } -> "rejected(by llc)"
  | Parked -> "parked"
  | Woken -> "woken"
  | Hlbegin -> "hlbegin"
  | Hlend { was_stl = true } -> "hlend(stl)"
  | Hlend { was_stl = false } -> "hlend(tl)"
  | Switch_granted -> "switch-granted"
  | Switch_denied -> "switch-denied"
  | Lock_acquired -> "lock-acquired"
  | Lock_released -> "lock-released"

let pp_entry ppf e =
  Format.fprintf ppf "%10d  core %2d  %s" e.time e.core (event_label e.event)

let dump ?limit ppf t =
  let es = entries t in
  let es =
    match limit with
    | None -> es
    | Some l ->
      let n = List.length es in
      if n <= l then es else List.filteri (fun i _ -> i >= n - l) es
  in
  if dropped t > 0 then
    Format.fprintf ppf "... %d earlier events dropped ...@." (dropped t);
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) es
