module Policy = Lk_htm.Policy

type kind = Cgl | Htm

type t = {
  name : string;
  kind : kind;
  recovery : bool;
  reject_policy : Policy.reject_policy;
  priority : Policy.priority_policy;
  htmlock : bool;
  switching : bool;
  retry : Policy.retry;
  lock : Policy.lock_impl;
}

let base =
  {
    name = "Baseline";
    kind = Htm;
    recovery = false;
    reject_policy = Policy.Wait_wakeup;
    priority = Policy.No_priority;
    htmlock = false;
    switching = false;
    retry = Policy.default_retry;
    lock = Policy.Ttas;
  }

let cgl = { base with name = "CGL"; kind = Cgl }

let baseline = base

let losa_safu =
  {
    base with
    name = "LosaTM-SAFU";
    recovery = true;
    reject_policy = Policy.Wait_wakeup;
    priority = Policy.Progression_based;
  }

let lockiller_rai =
  {
    base with
    name = "LockillerTM-RAI";
    recovery = true;
    reject_policy = Policy.Self_abort;
    priority = Policy.Insts_based;
  }

let lockiller_rri =
  {
    base with
    name = "LockillerTM-RRI";
    recovery = true;
    reject_policy = Policy.Retry_later 64;
    priority = Policy.Insts_based;
  }

let lockiller_rwi =
  {
    base with
    name = "LockillerTM-RWI";
    recovery = true;
    reject_policy = Policy.Wait_wakeup;
    priority = Policy.Insts_based;
  }

let lockiller_rwl =
  {
    base with
    name = "LockillerTM-RWL";
    recovery = true;
    reject_policy = Policy.Wait_wakeup;
    priority = Policy.No_priority;
    htmlock = true;
  }

let lockiller_rwil = { lockiller_rwi with name = "LockillerTM-RWIL"; htmlock = true }

let lockiller =
  { lockiller_rwil with name = "LockillerTM"; switching = true }

let all =
  [
    cgl;
    baseline;
    losa_safu;
    lockiller_rai;
    lockiller_rri;
    lockiller_rwi;
    lockiller_rwl;
    lockiller_rwil;
    lockiller;
  ]

let cgl_ticket = { cgl with name = "CGL-Ticket"; lock = Policy.Ticket }

let lockiller_rws =
  {
    lockiller_rwi with
    name = "LockillerTM-RWS";
    priority = Policy.Static_based;
  }

let extras = [ cgl_ticket; lockiller_rws ]

let find name =
  let needle = String.lowercase_ascii name in
  List.find_opt
    (fun s -> String.lowercase_ascii s.name = needle)
    (all @ extras)

let validate t =
  if t.kind = Cgl then Ok ()
  else if t.lock = Policy.Ticket then
    Error "the ticket lock is only available for the CGL baseline"
  else if t.htmlock && not t.recovery then
    Error "HTMLock requires the recovery mechanism"
  else if t.switching && not t.htmlock then
    Error "switchingMode requires the HTMLock mechanism"
  else if t.retry.Policy.max_retries < 0 then Error "negative retry budget"
  else Ok ()

let pp ppf t =
  match t.kind with
  | Cgl -> Format.fprintf ppf "%s (coarse-grained locking)" t.name
  | Htm ->
    Format.fprintf ppf "%s (recovery=%b policy=%a priority=%a htmlock=%b switching=%b)"
      t.name t.recovery Policy.pp_reject_policy t.reject_policy
      Policy.pp_priority_policy t.priority t.htmlock t.switching
