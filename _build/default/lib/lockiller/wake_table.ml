module Coreset = Lk_coherence.Coreset

type t = { tables : Coreset.t array }

let create ~cores =
  if cores <= 0 then invalid_arg "Wake_table.create: cores must be positive";
  { tables = Array.make cores Coreset.empty }

let record t ~rejector ~waiter =
  if rejector <> waiter then
    t.tables.(rejector) <- Coreset.add waiter t.tables.(rejector)

let drain t ~rejector =
  let waiters = Coreset.elements t.tables.(rejector) in
  t.tables.(rejector) <- Coreset.empty;
  waiters

let waiters t ~rejector = Coreset.elements t.tables.(rejector)

let pending t =
  Array.fold_left (fun acc s -> acc + Coreset.cardinal s) 0 t.tables
