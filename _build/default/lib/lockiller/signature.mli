(** Overflow signatures (OfRdSig / OfWrSig of Fig 5).

    Inspired by LogTM-SE: a Bloom filter over cache-line addresses kept
    at the LLC, recording the lock transaction's read and write set
    lines that overflowed the L1 in HTMLock mode. Conservative by
    construction — membership tests may report false positives (extra
    rejects, never lost conflicts), exactly like the hardware. *)

type t

val create : ?bits:int -> ?hashes:int -> unit -> t
(** Default geometry: 2048 bits, 4 hash functions — the scale of a
    hardware signature register file. [bits] must be a power of two. *)

val add : t -> Lk_coherence.Types.line -> unit

val test : t -> Lk_coherence.Types.line -> bool
(** No false negatives: after [add s l], [test s l] is always true. *)

val clear : t -> unit

val population : t -> int
(** Set bits (for occupancy statistics). *)

val insertions : t -> int
(** Number of [add] calls since the last [clear]. *)

val is_empty : t -> bool
