(** LLC authorization for HTMLock mode (switchingMode mechanism).

    Under switchingMode, at most one transaction may be in HTMLock mode
    (TL or STL) at any time; the LLC's request serialisation makes the
    grant atomic. A TL aspirant must hold the fallback lock *and* win
    this authorization; an STL aspirant needs only the authorization —
    which is exactly why a proactive switch can succeed without
    touching the lock (Section III-C). *)

type t

val create : unit -> t

val holder : t -> Lk_coherence.Types.core_id option

val try_acquire : t -> Lk_coherence.Types.core_id -> bool
(** Atomic test-and-set of the authorization. Re-acquiring by the
    current holder succeeds (idempotent). *)

val release : t -> Lk_coherence.Types.core_id -> unit
(** Raises [Invalid_argument] if the caller is not the holder. *)

val grants : t -> int
val denials : t -> int
