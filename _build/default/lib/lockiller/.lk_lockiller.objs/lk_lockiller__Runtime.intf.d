lib/lockiller/runtime.mli: Lk_coherence Lk_engine Lk_htm Sysconf Txtrace
