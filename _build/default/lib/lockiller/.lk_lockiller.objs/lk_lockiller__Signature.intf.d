lib/lockiller/signature.mli: Lk_coherence
