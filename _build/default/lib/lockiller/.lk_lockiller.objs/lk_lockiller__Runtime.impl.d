lib/lockiller/runtime.ml: Arbiter Array Hashtbl List Lk_coherence Lk_engine Lk_htm Lk_mesh Signature Sysconf Txtrace Wake_table
