lib/lockiller/sysconf.mli: Format Lk_htm
