lib/lockiller/arbiter.mli: Lk_coherence
