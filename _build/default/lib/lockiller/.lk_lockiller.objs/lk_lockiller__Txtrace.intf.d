lib/lockiller/txtrace.mli: Format Lk_coherence Lk_htm
