lib/lockiller/signature.ml: Bytes Char
