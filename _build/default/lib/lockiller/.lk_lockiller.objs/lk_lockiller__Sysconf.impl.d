lib/lockiller/sysconf.ml: Format List Lk_htm String
