lib/lockiller/wake_table.mli: Lk_coherence
