lib/lockiller/wake_table.ml: Array Lk_coherence
