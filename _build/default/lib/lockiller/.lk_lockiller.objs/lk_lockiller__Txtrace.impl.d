lib/lockiller/txtrace.ml: Array Format List Lk_coherence Lk_htm Printf
