lib/lockiller/arbiter.ml: Lk_coherence
