(** Wake-up bookkeeping of the recovery mechanism (Fig 2, green table).

    When a cache controller rejects a request under the WaitWakeup
    policy it records the requester; the table is drained when the
    rejecting transaction commits or aborts, sending one wake-up
    message per recorded core (the paper piggybacks this on an extended
    AWSNOOP stash-like transaction). *)

type t

val create : cores:int -> t

val record : t -> rejector:Lk_coherence.Types.core_id -> waiter:Lk_coherence.Types.core_id -> unit
(** Idempotent per (rejector, waiter) pair. Self-recording is a no-op. *)

val drain : t -> rejector:Lk_coherence.Types.core_id -> Lk_coherence.Types.core_id list
(** Remove and return all waiters recorded against [rejector], in
    ascending core order. *)

val waiters : t -> rejector:Lk_coherence.Types.core_id -> Lk_coherence.Types.core_id list
(** Non-destructive view (tests, reports). *)

val pending : t -> int
(** Total recorded (rejector, waiter) pairs. *)
