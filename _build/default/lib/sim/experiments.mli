(** One entry per table and figure of the paper's evaluation (plus the
    headline-claims check and a mechanism ablation). Each experiment
    renders plain-text tables whose rows correspond to the bars/series
    of the original artefact.

    Results are memoised inside a {!context}, so experiments sharing
    runs (e.g. every speedup needs the CGL reference) pay for each
    simulation once. *)

type context

val make_context :
  ?seed:int ->
  ?scale:float ->
  ?cores:int ->
  ?threads:int list ->
  unit ->
  context
(** Defaults: seed 1, scale 1.0, the paper's 32-core machine, thread
    counts 2/4/8/16/32. Tests use smaller machines and fewer thread
    counts. *)

val thread_counts : context -> int list

val result :
  context ->
  ?cache:Config.cache_profile ->
  sysconf:Lk_lockiller.Sysconf.t ->
  workload:Lk_stamp.Workload.profile ->
  threads:int ->
  unit ->
  Runner.result
(** Memoised {!Runner.run}. *)

val speedup_vs_cgl :
  context ->
  ?cache:Config.cache_profile ->
  sysconf:Lk_lockiller.Sysconf.t ->
  workload:Lk_stamp.Workload.profile ->
  threads:int ->
  unit ->
  float

(** An experiment: identifier (the bench target name), the paper
    artefact it reproduces, and the renderer. *)
type experiment = {
  id : string;
  artefact : string;
  describe : string;
  render : context -> Report.table list;
}

val table1 : experiment
val table2 : experiment
val fig1 : experiment
val fig7 : experiment
val fig8 : experiment
val fig9 : experiment
val fig10 : experiment
val fig11 : experiment
val fig12 : experiment
val fig13 : experiment
val headline : experiment
val ablation : experiment

val txsize : experiment
(** Extension (the paper's stated future work): sensitivity to
    transaction size — read/write sets scaled 0.5x to 8x on a
    vacation-style workload. *)

val noc : experiment
(** Model-fidelity ablation: per-link NoC contention on/off. *)

val topology : experiment
(** Section III-A claim: the framework works over mesh, torus, ring and
    crossbar interconnects. *)

val placement : experiment
(** Compact vs spread thread placement on a partially occupied fabric. *)

val protocol_knobs : experiment
(** Coherence-protocol ablation: MESI vs MSI, full-map vs
    limited-pointer directory. *)

val variance : experiment
(** Seed-robustness of the headline comparison (mean / stddev / min /
    max over several workload-generation seeds). *)

val all : experiment list
(** Paper order; [find] looks one up by id. *)

val find : string -> experiment option
