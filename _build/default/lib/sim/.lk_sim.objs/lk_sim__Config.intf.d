lib/sim/config.mli: Lk_coherence Lk_engine Lk_mesh
