lib/sim/metrics.mli:
