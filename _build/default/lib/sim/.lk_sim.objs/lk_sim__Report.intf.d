lib/sim/report.mli: Format
