lib/sim/experiments.mli: Config Lk_lockiller Lk_stamp Report Runner
