lib/sim/runner.ml: Array Config Format List Lk_coherence Lk_cpu Lk_engine Lk_htm Lk_lockiller Lk_mesh Lk_stamp Option Printf
