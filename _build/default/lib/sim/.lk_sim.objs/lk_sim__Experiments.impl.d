lib/sim/experiments.ml: Config Format Hashtbl List Lk_cpu Lk_htm Lk_lockiller Lk_mesh Lk_stamp Metrics Printf Report Runner String
