lib/sim/config.ml: Lk_coherence Lk_engine Lk_mesh Printf
