lib/sim/report.ml: Array Buffer Char Format List Printf String
