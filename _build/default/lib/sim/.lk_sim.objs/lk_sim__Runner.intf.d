lib/sim/runner.mli: Config Format Lk_cpu Lk_htm Lk_lockiller Lk_stamp
