lib/engine/sim.mli:
