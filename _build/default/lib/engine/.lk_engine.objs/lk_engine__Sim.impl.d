lib/engine/sim.ml: Event_queue List Printf
