lib/engine/rng.mli:
