lib/engine/trace.ml: Format Logs Logs_fmt
