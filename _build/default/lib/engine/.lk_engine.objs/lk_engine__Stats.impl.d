lib/engine/stats.ml: Array Format Hashtbl List String
