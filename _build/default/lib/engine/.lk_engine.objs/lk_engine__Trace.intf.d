lib/engine/trace.mli: Format Logs
