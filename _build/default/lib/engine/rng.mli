(** Deterministic pseudo-random number generation for simulations.

    Every stochastic decision in the simulator draws from an explicit
    generator state so that a run is reproducible from its seed alone.
    The implementation is SplitMix64, which is fast, passes BigCrush,
    and supports cheap stream splitting (one independent stream per
    simulated core or workload). *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Two generators created with
    the same seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Use one split stream per simulated entity so that adding entities
    does not perturb the streams of existing ones. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing it. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound); [bound] must be
    positive. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool
(** Fair coin flip. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p] (clamped to [0;1]). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val geometric : t -> float -> int
(** [geometric t p] draws the number of failures before the first
    success of a Bernoulli([p]) process; [p] must be in (0;1]. Used for
    bursty inter-arrival patterns in workload generators. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from an exponential distribution with the
    given mean. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] draws a rank in [0, n) from a Zipf distribution with
    skew [s] (s = 0 degenerates to uniform). Workload generators use it
    to model hot-set contention. *)
