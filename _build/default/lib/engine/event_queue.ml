(* Classic array-backed binary min-heap. Entries are compared by time
   first and by a monotonically increasing sequence number second, which
   yields stable FIFO behaviour for same-cycle events. *)

type 'a entry = { time : int; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let is_empty q = q.size = 0

let length q = q.size

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap q i j =
  let tmp = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt q.heap.(i) q.heap.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && lt q.heap.(l) q.heap.(!smallest) then smallest := l;
  if r < q.size && lt q.heap.(r) q.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let grow q entry =
  let capacity = Array.length q.heap in
  if q.size = capacity then begin
    let ncap = max 16 (2 * capacity) in
    let nheap = Array.make ncap entry in
    Array.blit q.heap 0 nheap 0 q.size;
    q.heap <- nheap
  end

let add q ~time payload =
  let entry = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  grow q entry;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    Some (top.time, top.payload)
  end

let peek_time q = if q.size = 0 then None else Some q.heap.(0).time

let clear q =
  q.heap <- [||];
  q.size <- 0
