let src name = Logs.Src.create ("lockiller." ^ name)

let setup ?(level = Logs.Debug) () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some level)

let debugf src ~cycle fmt =
  Format.kasprintf
    (fun s -> Logs.debug ~src (fun m -> m "[%d] %s" cycle s))
    fmt
