(* SplitMix64 (Steele, Lea, Flood 2014). The zipf sampler uses the
   rejection-inversion method of Hörmann and Derflinger, which needs no
   precomputed table and is exact for any skew s >= 0. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  let gamma = Int64.logor (mix64 (Int64.add seed golden_gamma)) 1L in
  (* Fold the derived gamma into the seed so sibling splits differ even
     when the raw outputs collide in their low bits. *)
  { state = Int64.logxor seed (Int64.shift_left gamma 1) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (bits64 t) mask) in
  v mod bound

let float t bound =
  (* 53 random bits scaled into [0, 1). *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int v /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p must be in (0;1]";
  if p = 1.0 then 0
  else
    let u = float t 1.0 in
    let u = if u <= 0.0 then min_float else u in
    int_of_float (floor (log u /. log (1.0 -. p)))

let exponential t mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then min_float else u in
  -.mean *. log u

(* Rejection-inversion sampling for the Zipf distribution over ranks
   1..n, returned 0-based. See Hörmann & Derflinger, "Rejection-inversion
   to generate variates from monotone discrete distributions" (1996). *)
let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  if s < 0.0 then invalid_arg "Rng.zipf: s must be non-negative";
  if n = 1 then 0
  else if s = 0.0 then int t n
  else begin
    let h_integral x = if s = 1.0 then log x else (x ** (1.0 -. s)) /. (1.0 -. s) in
    let h x = x ** -.s in
    let h_integral_inverse u =
      if s = 1.0 then exp u else ((1.0 -. s) *. u) ** (1.0 /. (1.0 -. s))
    in
    let nf = float_of_int n in
    let h_integral_x1 = h_integral 1.5 -. 1.0 in
    let h_integral_n = h_integral (nf +. 0.5) in
    let s_const = 2.0 -. h_integral_inverse (h_integral 2.5 -. h 2.0) in
    let rec draw () =
      let u = h_integral_n +. (float t 1.0 *. (h_integral_x1 -. h_integral_n)) in
      let x = h_integral_inverse u in
      let k = Float.round x in
      let k = if k < 1.0 then 1.0 else if k > nf then nf else k in
      if k -. x <= s_const || u >= h_integral (k +. 0.5) -. h k then
        int_of_float k - 1
      else draw ()
    in
    draw ()
  end
