(** Statistics primitives shared by all simulator components.

    Counters are plain named integers; accumulators track sum/min/max
    of integer samples; histograms bucket samples by powers of two. A
    [group] bundles the three so a component can expose everything it
    measured under one namespace and reports can render it uniformly. *)

type counter
type accumulator
type histogram
type group

val group : string -> group
(** [group name] creates an empty statistics namespace. *)

val counter : group -> string -> counter
(** Create-or-get the counter [name] inside the group. *)

val accumulator : group -> string -> accumulator
val histogram : group -> string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val sample : accumulator -> int -> unit
val count : accumulator -> int
val sum : accumulator -> int
val min_sample : accumulator -> int option
val max_sample : accumulator -> int option
val mean : accumulator -> float
(** Mean of the samples; 0 when empty. *)

val observe : histogram -> int -> unit
val buckets : histogram -> (int * int) list
(** [(upper_bound, count)] pairs for non-empty power-of-two buckets, in
    increasing bound order. *)

val counters : group -> (string * int) list
(** All counters of the group with their values, sorted by name. *)

val accumulators : group -> (string * accumulator) list

val reset : group -> unit
(** Zero every statistic in the group (the namespace survives). *)

val pp : Format.formatter -> group -> unit
(** Render the whole group, one statistic per line. *)
