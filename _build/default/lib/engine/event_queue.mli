(** Pending-event set of the discrete-event kernel.

    A binary min-heap keyed by (time, sequence number). The sequence
    number is assigned at insertion, so events scheduled for the same
    cycle fire in insertion order — this makes every simulation run
    fully deterministic. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val add : 'a t -> time:int -> 'a -> unit
(** [add q ~time ev] schedules [ev] at [time]. [time] may equal the time
    of previously popped events (the kernel enforces monotonicity, not
    the queue). *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest event, insertion order breaking
    ties. *)

val peek_time : 'a t -> int option
(** Time of the earliest pending event, if any. *)

val clear : 'a t -> unit
