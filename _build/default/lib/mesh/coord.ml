type t = { row : int; col : int }

let of_tile ~cols id =
  if cols <= 0 then invalid_arg "Coord.of_tile: cols must be positive";
  { row = id / cols; col = id mod cols }

let to_tile ~cols { row; col } = (row * cols) + col

let manhattan a b = abs (a.row - b.row) + abs (a.col - b.col)

let equal a b = a.row = b.row && a.col = b.col

let pp ppf { row; col } = Format.fprintf ppf "(%d,%d)" row col
