(** Tile coordinates on the 2-D mesh.

    Tiles are numbered row-major: tile [id] of a mesh with [cols]
    columns sits at row [id / cols], column [id mod cols]. *)

type t = { row : int; col : int }

val of_tile : cols:int -> int -> t
(** Position of a tile id (row-major). *)

val to_tile : cols:int -> t -> int

val manhattan : t -> t -> int
(** Hop distance under minimal routing. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
