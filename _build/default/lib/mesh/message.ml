type class_ = Control | Data

let flits = function Control -> 1 | Data -> 5

let serialization_cycles c = flits c - 1

let pp_class ppf = function
  | Control -> Format.pp_print_string ppf "control"
  | Data -> Format.pp_print_string ppf "data"
