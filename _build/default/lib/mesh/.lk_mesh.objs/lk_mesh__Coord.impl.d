lib/mesh/coord.ml: Format
