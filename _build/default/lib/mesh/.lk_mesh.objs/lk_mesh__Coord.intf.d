lib/mesh/coord.mli: Format
