lib/mesh/network.mli: Lk_engine Message Topology
