lib/mesh/network.ml: Array List Lk_engine Message Topology
