lib/mesh/message.ml: Format
