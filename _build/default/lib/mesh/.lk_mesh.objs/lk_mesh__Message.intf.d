lib/mesh/message.mli: Format
