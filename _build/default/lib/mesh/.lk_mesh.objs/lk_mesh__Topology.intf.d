lib/mesh/topology.mli: Format
