lib/mesh/topology.ml: Coord Format Fun List Printf
