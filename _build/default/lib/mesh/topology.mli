(** Interconnect topologies and minimal deterministic routing.

    The modelled system (Table I of the paper) is a 4x8 mesh with X-Y
    dimension-ordered routing: a packet first travels along the row (X
    direction) to the destination column, then along the column. X-Y
    routing on a mesh is deadlock-free, which is why the paper can
    treat the interconnect as a reliable request/response fabric.

    The paper notes (Section III-A) that its framework does not depend
    on the topology as long as any two nodes are reachable; to exercise
    that claim the module also provides a bidirectional ring (shortest
    direction routing), a 2-D torus (dimension-ordered with wrap-around
    when shorter) and a full crossbar (single hop). All routes are
    deterministic and minimal. *)

type t

type kind =
  | Mesh  (** 2-D mesh, X-Y routing (the paper's machine). *)
  | Torus  (** 2-D torus, X-Y routing with wrap-around. *)
  | Ring  (** Bidirectional ring, shortest-direction routing. *)
  | Crossbar  (** All-to-all, every route is one hop. *)

type link = { from_tile : int; to_tile : int }
(** A directed link between adjacent tiles. *)

val create : rows:int -> cols:int -> t
(** [create ~rows ~cols] builds an [rows] x [cols] mesh. Both must be
    positive. *)

val create_torus : rows:int -> cols:int -> t
(** Both dimensions must be at least 3 for the wrap links to be
    distinct from the mesh links. *)

val create_ring : tiles:int -> t
(** At least 3 tiles. *)

val create_crossbar : tiles:int -> t
(** At least 2 tiles. *)

val kind : t -> kind
val kind_name : kind -> string

val rows : t -> int
(** Rings and crossbars report one row. *)

val cols : t -> int
val tiles : t -> int

val route : t -> src:int -> dst:int -> link list
(** The deterministic minimal route between two tiles as the ordered
    list of directed links traversed; empty when [src = dst]. *)

val hops : t -> src:int -> dst:int -> int
(** Number of links on the route. *)

val links : t -> link list
(** Every directed link of the topology. *)

val link_index : t -> link -> int
(** Dense index of a link, for utilisation counters. Raises on a pair
    of tiles that are not adjacent in this topology. *)

val num_links : t -> int
(** Upper bound (array size) for {!link_index}. *)

val pp : Format.formatter -> t -> unit
