(** Message classes and serialisation sizes.

    Table I of the paper: flit size 16 bytes; a data-bearing message
    (64-byte line + header) is 5 flits, a control message 1 flit. The
    serialisation latency of a message is [flits - 1] extra cycles after
    the head flit, charged once (wormhole routing: the body follows the
    head through the network pipeline). *)

type class_ =
  | Control  (** Requests, acks, invalidations, NACK/reject, wake-up. *)
  | Data  (** Cache-line transfers and writebacks. *)

val flits : class_ -> int
(** Flits occupied by a message of this class (1 for control, 5 for
    data, per Table I). *)

val serialization_cycles : class_ -> int
(** Extra cycles beyond the head flit ([flits - 1]). *)

val pp_class : Format.formatter -> class_ -> unit
