(** Classic transactional-memory microbenchmarks, available alongside
    the STAMP suite (outside the paper's evaluation set) for quick
    experiments and demos. *)

val counter : Workload.profile
(** Every transaction increments one shared counter: the maximum-
    contention, minimum-footprint stress test. *)

val btree : Workload.profile
(** Search-mostly index: wide read sets over a large shared structure
    with few, scattered updates — the HTM-friendly case. *)

val queue : Workload.profile
(** Producer/consumer queue: short transactions all touching the two
    hot end-pointers. *)

val all : Workload.profile list
