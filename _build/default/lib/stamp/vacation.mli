(** vacation: travel-reservation system over red-black-tree tables
    (STAMP).

    Transactions walk several trees (tens of lines read) and update a
    handful of reservation records. Two configurations as in the
    paper: [low] (wide tables, mild contention) and [high]
    ("vacation+", narrow tables queried by every client). No
    exceptions; most time transactional. *)

val low : Workload.profile
val high : Workload.profile
