let profile =
  {
    Workload.name = "ssca2";
    txs_per_thread = 80;
    reads_per_tx = (2, 4);
    writes_per_tx = (1, 2);
    hot_lines = 256;
    hot_fraction = 0.1;
    zipf_skew = 0.1;
    shared_lines = 4096;
    private_lines = 32;
    compute_per_op = 2;
    pre_compute = (1500, 2500);
    post_compute = (100, 200);
    fault_prob = 0.0;
    barrier_every = None;
  }
