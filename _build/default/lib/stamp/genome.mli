(** genome: gene sequencing by de-duplicating segments into a hash set
    and linking them (STAMP).

    Profile: moderately long transactions (hash-set insertions scan
    buckets, so read sets in the tens of lines), a small write set,
    moderate contention on the shared segment table, most execution
    time inside transactions, no exceptions. *)

val profile : Workload.profile
