(** kmeans: iterative clustering; transactions update shared cluster
    centroids (STAMP).

    Two configurations, as in the paper: [low] (the suite's
    low-contention input: many clusters, so centroid updates rarely
    collide) and [high] ("kmeans+", few clusters and thus heavy
    centroid contention). Both have tiny transactions and spend most
    time in non-transactional distance computation. *)

val low : Workload.profile
val high : Workload.profile
