let low =
  {
    Workload.name = "vacation";
    txs_per_thread = 30;
    reads_per_tx = (16, 32);
    writes_per_tx = (4, 9);
    hot_lines = 128;
    hot_fraction = 0.3;
    zipf_skew = 0.5;
    shared_lines = 3072;
    private_lines = 64;
    compute_per_op = 2;
    pre_compute = (20, 60);
    post_compute = (10, 40);
    fault_prob = 0.0;
    barrier_every = None;
  }

let high =
  {
    low with
    Workload.name = "vacation+";
    hot_lines = 32;
    hot_fraction = 0.55;
    zipf_skew = 0.9;
  }
