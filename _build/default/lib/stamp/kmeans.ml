let low =
  {
    Workload.name = "kmeans";
    txs_per_thread = 60;
    reads_per_tx = (3, 6);
    writes_per_tx = (2, 3);
    hot_lines = 96;
    hot_fraction = 0.35;
    zipf_skew = 0.2;
    shared_lines = 512;
    private_lines = 32;
    compute_per_op = 2;
    pre_compute = (400, 800);
    post_compute = (20, 60);
    fault_prob = 0.0;
    (* clustering iterations are barrier-separated *)
    barrier_every = Some 10;
  }

let high =
  {
    low with
    Workload.name = "kmeans+";
    hot_lines = 8;
    hot_fraction = 0.55;
    zipf_skew = 0.5;
  }
