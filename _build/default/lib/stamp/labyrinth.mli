(** labyrinth: Lee-routing in a shared 3-D maze grid (STAMP).

    Profile: very long transactions — a route computation reads a large
    slice of the grid and writes the chosen path back — giving the
    largest read/write sets of the suite. They overflow a 32KB L1
    routinely and an 8KB L1 always, so execution lives on the fallback
    path under best-effort HTM (the behaviour the paper reports in
    Fig 9). Path collisions give moderate conflict rates. *)

val profile : Workload.profile
