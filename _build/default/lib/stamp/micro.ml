let counter =
  {
    Workload.name = "micro-counter";
    txs_per_thread = 100;
    reads_per_tx = (0, 0);
    writes_per_tx = (1, 1);
    hot_lines = 1;
    hot_fraction = 1.0;
    zipf_skew = 0.0;
    shared_lines = 16;
    private_lines = 0;
    compute_per_op = 1;
    pre_compute = (5, 15);
    post_compute = (5, 15);
    fault_prob = 0.0;
    barrier_every = None;
  }

let btree =
  {
    Workload.name = "micro-btree";
    txs_per_thread = 40;
    reads_per_tx = (12, 24);
    (* root-to-leaf walks *)
    writes_per_tx = (0, 1);
    hot_lines = 128;
    hot_fraction = 0.15;
    zipf_skew = 0.9;
    (* upper levels are hot *)
    shared_lines = 4096;
    private_lines = 16;
    compute_per_op = 2;
    pre_compute = (10, 40);
    post_compute = (10, 40);
    fault_prob = 0.0;
    barrier_every = None;
  }

let queue =
  {
    Workload.name = "micro-queue";
    txs_per_thread = 80;
    reads_per_tx = (1, 2);
    writes_per_tx = (1, 2);
    hot_lines = 2;
    (* head and tail pointers *)
    hot_fraction = 0.8;
    zipf_skew = 0.0;
    shared_lines = 256;
    private_lines = 16;
    compute_per_op = 1;
    pre_compute = (10, 30);
    post_compute = (10, 30);
    fault_prob = 0.0;
    barrier_every = None;
  }

let all = [ counter; btree; queue ]
