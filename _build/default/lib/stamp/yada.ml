let profile =
  {
    Workload.name = "yada";
    txs_per_thread = 12;
    reads_per_tx = (36, 80);
    writes_per_tx = (12, 28);
    hot_lines = 12;
    hot_fraction = 0.5;
    zipf_skew = 0.6;
    shared_lines = 3072;
    private_lines = 128;
    compute_per_op = 1;
    pre_compute = (30, 80);
    post_compute = (20, 50);
    fault_prob = 0.85;
    barrier_every = None;
  }
