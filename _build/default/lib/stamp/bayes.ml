let profile =
  {
    Workload.name = "bayes";
    txs_per_thread = 8;
    reads_per_tx = (10, 220);
    (* enormous variance, as characterised *)
    writes_per_tx = (2, 60);
    hot_lines = 24;
    hot_fraction = 0.45;
    zipf_skew = 0.7;
    shared_lines = 3072;
    private_lines = 128;
    compute_per_op = 2;
    pre_compute = (20, 400);
    post_compute = (20, 200);
    fault_prob = 0.05;
    barrier_every = None;
  }
