(** bayes: Bayesian network structure learning (STAMP).

    The paper *excludes* bayes from its evaluation, citing its "known
    unpredictable behavior and highly variable execution time" (their
    reference [38]); we keep a profile available — outside the default
    suite — so the exclusion can be examined: very long transactions
    with large, highly variable read/write sets and heavy contention on
    the adjacency structures, which makes run-to-run variance dwarf the
    mechanism effects. *)

val profile : Workload.profile
