let profile =
  {
    Workload.name = "labyrinth";
    txs_per_thread = 6;
    reads_per_tx = (120, 260);
    writes_per_tx = (20, 50);
    hot_lines = 96;
    hot_fraction = 0.3;
    zipf_skew = 0.3;
    shared_lines = 4096;
    private_lines = 256;
    compute_per_op = 1;
    pre_compute = (60, 150);
    post_compute = (30, 80);
    fault_prob = 0.02;
    barrier_every = None;
  }
