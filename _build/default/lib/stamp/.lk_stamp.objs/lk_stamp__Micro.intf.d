lib/stamp/micro.mli: Workload
