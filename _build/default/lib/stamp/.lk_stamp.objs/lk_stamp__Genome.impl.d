lib/stamp/genome.ml: Workload
