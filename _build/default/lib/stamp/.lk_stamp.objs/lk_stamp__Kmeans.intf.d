lib/stamp/kmeans.mli: Workload
