lib/stamp/genome.mli: Workload
