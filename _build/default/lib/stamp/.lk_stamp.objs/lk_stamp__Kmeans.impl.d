lib/stamp/kmeans.ml: Workload
