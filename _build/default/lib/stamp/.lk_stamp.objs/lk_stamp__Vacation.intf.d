lib/stamp/vacation.mli: Workload
