lib/stamp/ssca2.mli: Workload
