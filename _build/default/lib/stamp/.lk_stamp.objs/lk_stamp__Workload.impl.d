lib/stamp/workload.ml: Array Format Hashtbl List Lk_coherence Lk_cpu Lk_engine Option
