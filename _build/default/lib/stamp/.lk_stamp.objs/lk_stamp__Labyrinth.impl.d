lib/stamp/labyrinth.ml: Workload
