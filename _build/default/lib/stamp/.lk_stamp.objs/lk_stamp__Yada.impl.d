lib/stamp/yada.ml: Workload
