lib/stamp/yada.mli: Workload
