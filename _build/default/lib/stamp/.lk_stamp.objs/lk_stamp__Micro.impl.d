lib/stamp/micro.ml: Workload
