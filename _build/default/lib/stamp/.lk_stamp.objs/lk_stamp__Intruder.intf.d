lib/stamp/intruder.mli: Workload
