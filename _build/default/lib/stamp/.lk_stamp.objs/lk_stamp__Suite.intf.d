lib/stamp/suite.mli: Workload
