lib/stamp/vacation.ml: Workload
