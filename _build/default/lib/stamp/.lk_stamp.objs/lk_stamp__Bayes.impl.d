lib/stamp/bayes.ml: Workload
