lib/stamp/suite.ml: Bayes Genome Intruder Kmeans Labyrinth List Micro Ssca2 String Vacation Workload Yada
