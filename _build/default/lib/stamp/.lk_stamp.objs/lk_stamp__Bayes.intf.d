lib/stamp/bayes.mli: Workload
