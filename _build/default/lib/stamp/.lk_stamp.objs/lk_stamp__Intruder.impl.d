lib/stamp/intruder.ml: Workload
