lib/stamp/workload.mli: Format Lk_cpu
