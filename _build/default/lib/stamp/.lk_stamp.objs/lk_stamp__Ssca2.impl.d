lib/stamp/ssca2.ml: Workload
