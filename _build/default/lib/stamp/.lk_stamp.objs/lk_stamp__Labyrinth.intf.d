lib/stamp/labyrinth.mli: Workload
