let profile =
  {
    Workload.name = "genome";
    txs_per_thread = 30;
    reads_per_tx = (18, 36);
    writes_per_tx = (3, 7);
    hot_lines = 64;
    hot_fraction = 0.25;
    zipf_skew = 0.6;
    shared_lines = 2048;
    private_lines = 64;
    compute_per_op = 2;
    pre_compute = (20, 60);
    post_compute = (10, 30);
    fault_prob = 0.0;
    (* phase barriers between the segment/dedup/link stages *)
    barrier_every = Some 10;
  }
