let profile =
  {
    Workload.name = "intruder";
    txs_per_thread = 50;
    reads_per_tx = (6, 16);
    writes_per_tx = (3, 8);
    hot_lines = 16;
    hot_fraction = 0.6;
    zipf_skew = 0.8;
    shared_lines = 1024;
    private_lines = 48;
    compute_per_op = 1;
    pre_compute = (10, 30);
    post_compute = (5, 20);
    fault_prob = 0.0;
    barrier_every = None;
  }
