let all =
  [
    Genome.profile;
    Intruder.profile;
    Kmeans.low;
    Kmeans.high;
    Labyrinth.profile;
    Ssca2.profile;
    Vacation.low;
    Vacation.high;
    Yada.profile;
  ]

let high_contention = [ Intruder.profile; Kmeans.high; Vacation.high ]

let extras = Bayes.profile :: Micro.all

let find name =
  let needle = String.lowercase_ascii name in
  List.find_opt
    (fun p -> String.lowercase_ascii p.Workload.name = needle)
    (all @ extras)

let names = List.map (fun p -> p.Workload.name) all

let extra_names = List.map (fun p -> p.Workload.name) extras
