(** yada: Delaunay mesh refinement (STAMP).

    Profile: long transactions with large read/write sets (cavity
    re-triangulation) and — the paper's key point — frequent
    exceptions, which best-effort HTM cannot survive. It is the one
    workload where even LockillerTM stays below coarse-grained locking
    (Fig 7), because switchingMode deliberately does not cover
    exception-induced aborts. *)

val profile : Workload.profile
