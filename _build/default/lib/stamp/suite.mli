(** The benchmark suite as evaluated in the paper: STAMP without bayes
    (excluded there for its unpredictable behaviour), with both
    contention configurations of kmeans and vacation. *)

val all : Workload.profile list
(** Presentation order of the paper's figures: genome, intruder,
    kmeans, kmeans+, labyrinth, ssca2, vacation, vacation+, yada. *)

val high_contention : Workload.profile list
(** The workloads the paper calls high-contention (used for the
    extreme-case speedup claims): intruder, kmeans+, vacation+. *)

val extras : Workload.profile list
(** Profiles available outside the paper's evaluation set: bayes (which
    the paper excludes) and the classic microbenchmarks of {!Micro}. *)

val find : string -> Workload.profile option
(** Case-insensitive lookup by name, over [all] and [extras]. *)

val names : string list
(** Names of [all] (the paper's set only). *)

val extra_names : string list
