(** intruder: network packet reassembly and signature matching (STAMP).

    Profile: short transactions on shared queues and a reassembly map —
    small read/write sets but a *very* hot shared structure, making it
    one of the highest-contention STAMP applications; no exceptions. *)

val profile : Workload.profile
