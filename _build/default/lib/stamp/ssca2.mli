(** ssca2: graph kernel (Scalable Synthetic Compact Applications 2) —
    adjacency-list construction with tiny node-insertion transactions
    (STAMP).

    Profile: the shortest transactions of the suite, touching a couple
    of lines in a huge shared graph; negligible contention; little time
    inside transactions. HTM of any flavour scales almost linearly. *)

val profile : Workload.profile
