(** In-order core model: executes one thread program through the
    transactional runtime.

    The core implements the software side of the paper: the
    [lock_acquire_elided] / [lock_release_elided] idioms of Listing 1
    (best-effort HTM with fallback-lock subscription) and Listing 2
    (HTMLock + switchingMode release dispatch on the extended ttest),
    the retry strategy with bounded attempts and exponential backoff,
    and the CGL baseline. It also attributes every cycle to an
    {!Accounting.category}. *)

type t

val spawn :
  ?barrier:Barrier.t * int ->
  runtime:Lk_lockiller.Runtime.t ->
  core:Lk_coherence.Types.core_id ->
  thread:Program.thread ->
  accounting:Accounting.t ->
  on_done:(unit -> unit) ->
  unit ->
  t
(** Create a core bound to [core]'s L1/tile. Nothing runs until
    {!start}. [barrier = (b, k)] makes the thread synchronise on [b]
    after every [k] completed transactions (phase-structured workloads);
    every participating thread must use the same [k] and have the same
    transaction count. Barrier wait time is accounted as non-tran, as
    in the paper's breakdown. *)

val start : t -> unit
(** Begin executing at the current simulated cycle. [on_done] fires
    when the thread program is exhausted. *)

val finished : t -> bool
val finish_time : t -> int
(** Cycle at which the thread completed (meaningful once [finished]). *)

val transactions_left : t -> int
