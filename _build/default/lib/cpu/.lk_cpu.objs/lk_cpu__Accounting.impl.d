lib/cpu/accounting.ml: Array Format List
