lib/cpu/accounting.mli: Format Lk_coherence
