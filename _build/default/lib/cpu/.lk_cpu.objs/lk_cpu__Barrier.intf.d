lib/cpu/barrier.mli: Lk_engine
