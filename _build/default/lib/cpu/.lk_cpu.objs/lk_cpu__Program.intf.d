lib/cpu/program.mli: Format
