lib/cpu/core.mli: Accounting Barrier Lk_coherence Lk_lockiller Program
