lib/cpu/core.ml: Accounting Barrier List Lk_coherence Lk_engine Lk_htm Lk_lockiller Program
