lib/cpu/program.ml: Array Buffer Format Hashtbl List Option Printf String
