lib/cpu/barrier.ml: List Lk_engine
