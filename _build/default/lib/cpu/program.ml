type op =
  | Compute of int
  | Read of int
  | Write of int * int
  | Incr of int
  | Add of int * int
  | Fault

type transaction = { pre_compute : int; ops : op list; post_compute : int }

type thread = transaction list

type t = thread array

let op_insts = function
  | Compute n -> n
  | Read _ | Write _ | Incr _ | Add _ | Fault -> 1

let op_count ops = List.fold_left (fun acc op -> acc + op_insts op) 0 ops

let transactions t =
  Array.fold_left (fun acc thread -> acc + List.length thread) 0 t

let touched_addresses t =
  let tbl = Hashtbl.create 256 in
  Array.iter
    (fun thread ->
      List.iter
        (fun tx ->
          List.iter
            (function
              | Compute _ | Fault -> ()
              | Read a | Write (a, _) | Incr a | Add (a, _) ->
                Hashtbl.replace tbl a ())
            tx.ops)
        thread)
    t;
  Hashtbl.fold (fun a () acc -> a :: acc) tbl [] |> List.sort compare

let validate t =
  let problem = ref None in
  let note msg = if !problem = None then problem := Some msg in
  Array.iteri
    (fun i thread ->
      List.iter
        (fun tx ->
          if tx.pre_compute < 0 || tx.post_compute < 0 then
            note (Printf.sprintf "thread %d: negative compute" i);
          List.iter
            (function
              | Compute n when n < 0 ->
                note (Printf.sprintf "thread %d: negative compute op" i)
              | Read a | Write (a, _) | Incr a | Add (a, _) ->
                if a < 0 then
                  note (Printf.sprintf "thread %d: negative address" i)
              | Compute _ | Fault -> ())
            tx.ops)
        thread)
    t;
  match !problem with None -> Ok () | Some msg -> Error msg

let op_to_text = function
  | Compute n -> Printf.sprintf "compute %d" n
  | Read a -> Printf.sprintf "read %#x" a
  | Write (a, v) -> Printf.sprintf "write %#x %d" a v
  | Incr a -> Printf.sprintf "incr %#x" a
  | Add (a, d) -> Printf.sprintf "add %#x %d" a d
  | Fault -> "fault"

let to_text t =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun thread ->
      Buffer.add_string buf "thread\n";
      List.iter
        (fun tx ->
          Buffer.add_string buf
            (Printf.sprintf "  tx pre=%d post=%d\n" tx.pre_compute
               tx.post_compute);
          List.iter
            (fun op ->
              Buffer.add_string buf "    ";
              Buffer.add_string buf (op_to_text op);
              Buffer.add_char buf '\n')
            tx.ops)
        thread)
    t;
  Buffer.contents buf

(* Line-oriented parser with explicit state: which thread and which
   transaction we are appending to. Both are built in reverse and
   flipped at the end. *)
let of_text text =
  let error line msg = Error (Printf.sprintf "line %d: %s" line msg) in
  let int_of_token tok =
    try Some (int_of_string tok) with Failure _ -> None
  in
  let parse_kv line key tok =
    let prefix = key ^ "=" in
    let pl = String.length prefix in
    if String.length tok > pl && String.sub tok 0 pl = prefix then
      match int_of_token (String.sub tok pl (String.length tok - pl)) with
      | Some v -> Ok v
      | None -> error line (Printf.sprintf "bad %s value %S" key tok)
    else error line (Printf.sprintf "expected %s=<int>, got %S" key tok)
  in
  let lines = String.split_on_char '\n' text in
  (* threads_rev : finished threads; txs_rev : current thread's
     transactions; ops_rev : current transaction's body. *)
  let rec go lineno lines ~started threads_rev txs_rev ops_rev =
    let close_tx txs_rev =
      match txs_rev with
      | [] -> []
      | tx :: rest -> { tx with ops = List.rev ops_rev } :: rest
    in
    match lines with
    | [] -> begin
      if not started && txs_rev = [] then
        Error "empty program: no 'thread' sections"
      else
        let final_thread = List.rev (close_tx txs_rev) in
        Ok (Array.of_list (List.rev (final_thread :: threads_rev)))
    end
    | raw :: rest -> begin
      let line =
        match String.index_opt raw '#' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      let tokens =
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun s -> s <> "")
      in
      match tokens with
      | [] -> go (lineno + 1) rest ~started threads_rev txs_rev ops_rev
      | "thread" :: [] ->
        if not started then go (lineno + 1) rest ~started:true threads_rev [] []
        else
          let finished = List.rev (close_tx txs_rev) in
          go (lineno + 1) rest ~started:true (finished :: threads_rev) [] []
      | "tx" :: args -> begin
        match args with
        | [ pre_tok; post_tok ] -> begin
          match (parse_kv lineno "pre" pre_tok, parse_kv lineno "post" post_tok)
          with
          | Ok pre, Ok post ->
            let txs_rev = close_tx txs_rev in
            go (lineno + 1) rest ~started:true threads_rev
              ({ pre_compute = pre; ops = []; post_compute = post } :: txs_rev)
              []
          | (Error _ as e), _ | _, (Error _ as e) -> e
        end
        | _ -> error lineno "expected: tx pre=<int> post=<int>"
      end
      | op_tokens -> begin
        if txs_rev = [] then error lineno "operation outside a transaction"
        else
          let parsed =
            match op_tokens with
            | [ "compute"; n ] ->
              Option.map (fun n -> Compute n) (int_of_token n)
            | [ "read"; a ] -> Option.map (fun a -> Read a) (int_of_token a)
            | [ "write"; a; v ] -> begin
              match (int_of_token a, int_of_token v) with
              | Some a, Some v -> Some (Write (a, v))
              | _ -> None
            end
            | [ "incr"; a ] -> Option.map (fun a -> Incr a) (int_of_token a)
            | [ "add"; a; d ] -> begin
              match (int_of_token a, int_of_token d) with
              | Some a, Some d -> Some (Add (a, d))
              | _ -> None
            end
            | [ "fault" ] -> Some Fault
            | _ -> None
          in
          match parsed with
          | Some op ->
            go (lineno + 1) rest ~started threads_rev txs_rev (op :: ops_rev)
          | None ->
            error lineno
              (Printf.sprintf "unknown operation %S"
                 (String.concat " " op_tokens))
      end
    end
  in
  match go 1 lines ~started:false [] [] [] with
  | Error _ as e -> e
  | Ok program -> (
    match validate program with
    | Ok () -> Ok program
    | Error msg -> Error ("invalid program: " ^ msg))

let pp_op ppf = function
  | Compute n -> Format.fprintf ppf "compute(%d)" n
  | Read a -> Format.fprintf ppf "read(%#x)" a
  | Write (a, v) -> Format.fprintf ppf "write(%#x,%d)" a v
  | Incr a -> Format.fprintf ppf "incr(%#x)" a
  | Add (a, d) -> Format.fprintf ppf "add(%#x,%+d)" a d
  | Fault -> Format.pp_print_string ppf "fault"
