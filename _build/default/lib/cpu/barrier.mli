(** Sense-reversing thread barrier for phase-structured workloads.

    Several STAMP applications are barrier-phased (kmeans iterations,
    genome stages); the paper's execution-time breakdown lumps the wait
    into "non-tran and barrier". A barrier is created for a fixed party
    count; each party's [wait] parks its continuation until the last
    party arrives, which releases everyone (the continuations run at
    the release cycle). Reusable across any number of phases. *)

type t

val create : parties:int -> t
(** [parties] must be positive. *)

val parties : t -> int

val wait : t -> sim:Lk_engine.Sim.t -> k:(unit -> unit) -> unit
(** Park until all parties have arrived in the current phase. The
    releasing arrival schedules every continuation at the current
    cycle. Calling [wait] more times than [parties] within one phase
    raises. *)

val waiting : t -> int
(** Parties currently parked (tests). *)

val phases_completed : t -> int
