(** Thread programs: the workload representation executed by the
    simulated cores.

    A thread is a sequence of transactions; each transaction has
    non-transactional work around a critical-section body. Bodies are
    lists of abstract operations — enough to reproduce any STAMP
    application's transactional profile (lengths, read/write mix,
    contention, faults) while keeping verifiable value semantics:
    [Incr] is a read-modify-write whose committed effects must add up,
    which is how the test suite checks atomicity end to end. *)

type op =
  | Compute of int  (** [n] cycles of local work ([n] instructions). *)
  | Read of int  (** Load from a byte address. *)
  | Write of int * int  (** Store a literal value to a byte address. *)
  | Incr of int  (** Atomic increment of the counter at a byte address. *)
  | Add of int * int
      (** Atomic add of a (possibly negative) delta — bank-transfer
          style updates whose committed sums tests can check. *)
  | Fault
      (** An exception fires here (page fault, syscall...). Best-effort
          HTM aborts; lock transactions survive. *)

type transaction = {
  pre_compute : int;  (** Non-transactional cycles before the body. *)
  ops : op list;  (** Critical-section body. *)
  post_compute : int;  (** Non-transactional cycles after. *)
}

type thread = transaction list

type t = thread array
(** One thread per participating core, indexed by core id. *)

val op_count : op list -> int
(** Number of instructions a body executes (computes count their cycle
    count, memory operations one each). *)

val transactions : t -> int
(** Total transactions across all threads. *)

val touched_addresses : t -> int list
(** Sorted distinct byte addresses appearing in any body (tests,
    conservation checks). *)

val validate : t -> (unit, string) result
(** Reject negative compute amounts and negative addresses. *)

val to_text : t -> string
(** Render a program in the line-oriented text format below —
    hand-editable and stable, for saving and sharing custom workloads:

    {v
    # comment
    thread
      tx pre=10 post=5
        compute 30
        read 0x1000
        write 0x2040 7
        incr 0x1000
        add 0x3000 -5
        fault
      tx pre=0 post=0
        incr 0x1000
    thread
      ...
    v} *)

val of_text : string -> (t, string) result
(** Parse the {!to_text} format. Addresses accept decimal or [0x] hex.
    Errors carry the offending line number. *)

val pp_op : Format.formatter -> op -> unit
