module Sim = Lk_engine.Sim

type t = {
  n : int;
  mutable parked : (unit -> unit) list;
  mutable completed : int;
}

let create ~parties =
  if parties <= 0 then invalid_arg "Barrier.create: parties must be positive";
  { n = parties; parked = []; completed = 0 }

let parties t = t.n

let waiting t = List.length t.parked

let phases_completed t = t.completed

let wait t ~sim ~k =
  if List.length t.parked >= t.n then
    invalid_arg "Barrier.wait: more waiters than parties";
  if List.length t.parked = t.n - 1 then begin
    (* last arrival: release everyone *)
    let release = List.rev (k :: t.parked) in
    t.parked <- [];
    t.completed <- t.completed + 1;
    List.iter (fun k -> Sim.schedule sim ~delay:0 k) release
  end
  else t.parked <- k :: t.parked
