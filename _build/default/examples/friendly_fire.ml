(* Friendly fire, up close. Two threads repeatedly increment the same
   two counters in opposite orders — the classic mutual-kill pattern:
   under requester-win each transaction aborts the other, nobody
   advances, and both eventually limp through the fallback lock. The
   recovery mechanism with insts-based priority lets exactly one of
   them win each round instead.

     dune exec examples/friendly_fire.exe *)

module Sim = Lockiller.Engine.Sim
module Store = Lockiller.Htm.Store
module Reason = Lockiller.Htm.Reason
module Sysconf = Lockiller.Mechanisms.Sysconf
module Runtime = Lockiller.Mechanisms.Runtime
module Program = Lockiller.Cpu.Program
module Accounting = Lockiller.Cpu.Accounting
module Core = Lockiller.Cpu.Core
module Config = Lockiller.Sim.Config

let a = 64 * 16
let b = 64 * 17
let rounds = 15

(* Thread 0 touches A then B; thread 1 touches B then A, with enough
   compute in between that both are mid-flight when the conflict
   lands. *)
let program =
  [|
    List.init rounds (fun _ ->
        {
          Program.pre_compute = 4;
          ops =
            [
              Program.Incr a;
              Program.Compute 300;
              Program.Incr b;
              Program.Compute 300;
            ];
          post_compute = 4;
        });
    List.init rounds (fun _ ->
        {
          Program.pre_compute = 4;
          ops =
            [
              Program.Incr b;
              Program.Compute 300;
              Program.Incr a;
              Program.Compute 300;
            ];
          post_compute = 4;
        });
  |]

let run sysconf =
  let machine = Config.machine ~cores:2 () in
  let sim, _net, protocol = Config.build machine in
  let store = Store.create ~cores:2 in
  let runtime = Runtime.create ~protocol ~store ~sysconf ~lock_addr:0 () in
  let accounting = Accounting.create ~cores:2 in
  let cpus =
    Array.mapi
      (fun core thread ->
        Core.spawn ~runtime ~core ~thread ~accounting ~on_done:(fun () -> ()) ())
      program
  in
  Array.iter Core.start cpus;
  Sim.run sim;
  let stats c = Runtime.core_stats runtime c in
  let aborts = (stats 0).Runtime.aborts + (stats 1).Runtime.aborts in
  let mc =
    (stats 0).Runtime.abort_reasons.(Reason.index Reason.Conflict_htm)
    + (stats 1).Runtime.abort_reasons.(Reason.index Reason.Conflict_htm)
  in
  let fallbacks =
    (stats 0).Runtime.lock_commits + (stats 1).Runtime.lock_commits
  in
  let rejects =
    (stats 0).Runtime.rejects_received + (stats 1).Runtime.rejects_received
  in
  Printf.printf "%-18s %8d cycles  %4d aborts (%d mc)  %3d fallbacks  %4d rejects\n"
    sysconf.Sysconf.name (Sim.now sim) aborts mc fallbacks rejects;
  assert (Store.committed store a = 2 * rounds);
  assert (Store.committed store b = 2 * rounds)

let () =
  Printf.printf
    "Friendly fire: 2 threads increment the same counters in opposite \
     order, %d rounds each.\n\n" rounds;
  List.iter run
    [ Sysconf.baseline; Sysconf.lockiller_rai; Sysconf.lockiller_rwi ];
  print_newline ();
  Printf.printf
    "Requester-win: both transactions keep killing each other (mc aborts) \
     and\nfall back to the lock. Recovery + insts-based priority rejects the\n\
     younger transaction's requests instead, so one always finishes \
     (fewer\naborts, fewer fallbacks — the rejects column shows the NACKs \
     doing the work).\n"
