examples/overflow_switch.mli:
