examples/noc_heatmap.mli:
