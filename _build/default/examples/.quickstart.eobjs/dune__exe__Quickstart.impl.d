examples/quickstart.ml: List Lockiller Printf
