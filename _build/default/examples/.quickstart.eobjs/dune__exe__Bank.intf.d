examples/bank.mli:
