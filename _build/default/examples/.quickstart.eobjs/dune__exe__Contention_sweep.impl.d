examples/contention_sweep.ml: List Lockiller Printf
