examples/noc_heatmap.ml: Array List Lockiller Option Printf
