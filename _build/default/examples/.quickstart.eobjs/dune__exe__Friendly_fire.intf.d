examples/friendly_fire.mli:
