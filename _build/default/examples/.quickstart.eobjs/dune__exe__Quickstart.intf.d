examples/quickstart.mli:
