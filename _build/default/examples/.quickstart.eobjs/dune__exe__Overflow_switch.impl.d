examples/overflow_switch.ml: List Lockiller Printf
