examples/bank.ml: Array List Lockiller Printf
