examples/friendly_fire.ml: Array List Lockiller Printf
