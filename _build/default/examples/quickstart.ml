(* Quickstart: simulate one STAMP workload under three systems and
   compare the paper's metrics.

     dune exec examples/quickstart.exe *)

let () =
  let workload = "intruder" and threads = 8 in
  Printf.printf "LockillerTM quickstart: %s, %d threads, 32-core machine\n\n"
    workload threads;
  let cgl_cycles = ref 0 in
  List.iter
    (fun system ->
      match Lockiller.run ~system ~workload ~threads () with
      | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
      | Ok r ->
        let module R = Lockiller.Sim.Runner in
        if system = "CGL" then cgl_cycles := r.R.cycles;
        let speedup =
          if !cgl_cycles = 0 then 1.0
          else float_of_int !cgl_cycles /. float_of_int r.R.cycles
        in
        Printf.printf
          "%-16s %9d cycles  speedup vs CGL %5.2fx  commit rate %5.1f%%  \
           aborts %4d  fallbacks %3d\n"
          system r.R.cycles speedup
          (100.0 *. r.R.commit_rate)
          r.R.aborts r.R.lock_commits)
    [ "CGL"; "Baseline"; "LockillerTM" ];
  print_newline ();
  Printf.printf
    "LockillerTM keeps the commit rate up (recovery kills friendly fire) and\n\
     turns fallback serialisation into concurrent lock transactions (HTMLock).\n"
