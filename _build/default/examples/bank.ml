(* A hand-written transactional application on the low-level API: a
   bank whose tellers transfer money between accounts inside
   transactions. Demonstrates building a custom machine, runtime and
   thread programs without the STAMP generators — and verifies that
   every system of Table II preserves the bank's total balance.

     dune exec examples/bank.exe *)

module Sim = Lockiller.Engine.Sim
module Store = Lockiller.Htm.Store
module Sysconf = Lockiller.Mechanisms.Sysconf
module Runtime = Lockiller.Mechanisms.Runtime
module Program = Lockiller.Cpu.Program
module Accounting = Lockiller.Cpu.Accounting
module Core = Lockiller.Cpu.Core
module Config = Lockiller.Sim.Config

let accounts = 16
let tellers = 8
let transfers_per_teller = 40
let initial_balance = 1_000
let account_addr i = 64 * (8 + i) (* one cache line per account *)
let lock_addr = 0

(* Each teller moves a pseudo-random amount between two accounts per
   transaction: read both balances, debit one, credit the other. *)
let teller_program teller =
  List.init transfers_per_teller (fun i ->
      let from_ = (teller + (3 * i)) mod accounts in
      let to_ = (from_ + 1 + (i mod (accounts - 1))) mod accounts in
      let amount = 1 + ((teller + i) mod 9) in
      {
        Program.pre_compute = 10;
        ops =
          [
            Program.Read (account_addr from_);
            Program.Read (account_addr to_);
            Program.Compute 6;
            Program.Add (account_addr from_, -amount);
            Program.Add (account_addr to_, amount);
          ];
        post_compute = 10;
      })

let run_bank sysconf =
  let machine = Config.machine ~cores:8 () in
  let sim, _net, protocol = Config.build machine in
  let store = Store.create ~cores:8 in
  (* open the bank *)
  for i = 0 to accounts - 1 do
    Store.poke store (account_addr i) initial_balance
  done;
  let runtime = Runtime.create ~protocol ~store ~sysconf ~lock_addr () in
  let accounting = Accounting.create ~cores:8 in
  let cpus =
    Array.init tellers (fun core ->
        Core.spawn ~runtime ~core ~thread:(teller_program core) ~accounting
          ~on_done:(fun () -> ()) ())
  in
  Array.iter Core.start cpus;
  Sim.run sim;
  let total =
    List.init accounts (fun i -> Store.committed store (account_addr i))
    |> List.fold_left ( + ) 0
  in
  (Sim.now sim, total)

let () =
  Printf.printf
    "Bank: %d accounts x %d, %d tellers x %d transfers, every Table II \
     system\n\n"
    accounts initial_balance tellers transfers_per_teller;
  let expected = accounts * initial_balance in
  List.iter
    (fun sysconf ->
      let cycles, total = run_bank sysconf in
      Printf.printf "%-16s %8d cycles   total balance %6d  %s\n"
        sysconf.Sysconf.name cycles total
        (if total = expected then "(conserved)" else "(VIOLATION!)");
      if total <> expected then exit 1)
    Sysconf.all;
  print_newline ();
  Printf.printf "Money is conserved under every system: transactions are \
                 atomic end to end.\n"
