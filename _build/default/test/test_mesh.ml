(* Tests for the mesh topology, X-Y routing and the network latency
   model. *)

module Coord = Lk_mesh.Coord
module Topology = Lk_mesh.Topology
module Message = Lk_mesh.Message
module Network = Lk_mesh.Network

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let paper_mesh () = Topology.create ~rows:4 ~cols:8

(* --- Coord ----------------------------------------------------------- *)

let test_coord_roundtrip () =
  let cols = 8 in
  for id = 0 to 31 do
    check_int "roundtrip" id (Coord.to_tile ~cols (Coord.of_tile ~cols id))
  done

let test_coord_layout () =
  let c = Coord.of_tile ~cols:8 11 in
  check_int "row" 1 c.Coord.row;
  check_int "col" 3 c.Coord.col

let test_coord_manhattan () =
  let a = { Coord.row = 0; col = 0 } and b = { Coord.row = 3; col = 7 } in
  check_int "distance" 10 (Coord.manhattan a b);
  check_int "self" 0 (Coord.manhattan a a)

(* --- Topology -------------------------------------------------------- *)

let test_topology_tiles () =
  let t = paper_mesh () in
  check_int "32 tiles" 32 (Topology.tiles t)

let test_route_length_is_manhattan () =
  let t = paper_mesh () in
  for src = 0 to 31 do
    for dst = 0 to 31 do
      check_int "route length" (Topology.hops t ~src ~dst)
        (List.length (Topology.route t ~src ~dst))
    done
  done

let test_route_self_empty () =
  let t = paper_mesh () in
  check_bool "empty" true (Topology.route t ~src:5 ~dst:5 = [])

let test_route_is_connected_path () =
  let t = paper_mesh () in
  let route = Topology.route t ~src:0 ~dst:31 in
  let rec connected = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) ->
      a.Topology.to_tile = b.Topology.from_tile && connected rest
  in
  check_bool "connected" true (connected route);
  (match route with
  | first :: _ -> check_int "starts at src" 0 first.Topology.from_tile
  | [] -> Alcotest.fail "route empty");
  let last = List.nth route (List.length route - 1) in
  check_int "ends at dst" 31 last.Topology.to_tile

let test_route_xy_order () =
  (* X-Y routing: column movement strictly before row movement. *)
  let t = paper_mesh () in
  let route = Topology.route t ~src:0 ~dst:26 in
  let is_col_hop l =
    let f = Coord.of_tile ~cols:8 l.Topology.from_tile in
    let g = Coord.of_tile ~cols:8 l.Topology.to_tile in
    f.Coord.row = g.Coord.row
  in
  let rec check_phase seen_row = function
    | [] -> true
    | hop :: rest ->
      if is_col_hop hop then (not seen_row) && check_phase false rest
      else check_phase true rest
  in
  check_bool "X before Y" true (check_phase false route)

let test_out_of_range_rejected () =
  let t = paper_mesh () in
  Alcotest.check_raises "bad tile"
    (Invalid_argument "Topology.hops: tile 32 out of range") (fun () ->
      ignore (Topology.hops t ~src:32 ~dst:0))

let test_links_count () =
  (* A rows x cols mesh has 2*(rows*(cols-1) + cols*(rows-1)) directed
     links. *)
  let t = paper_mesh () in
  check_int "directed links"
    (2 * ((4 * 7) + (8 * 3)))
    (List.length (Topology.links t))

let test_link_index_distinct () =
  let t = paper_mesh () in
  let indices = List.map (Topology.link_index t) (Topology.links t) in
  let sorted = List.sort_uniq compare indices in
  check_int "indices distinct" (List.length indices) (List.length sorted)

let prop_hops_symmetric =
  QCheck.Test.make ~name:"hop count is symmetric" ~count:200
    QCheck.(pair (int_bound 31) (int_bound 31))
    (fun (src, dst) ->
      let t = paper_mesh () in
      Topology.hops t ~src ~dst = Topology.hops t ~src:dst ~dst:src)

let prop_hops_triangle =
  QCheck.Test.make ~name:"hop count satisfies triangle inequality" ~count:200
    QCheck.(triple (int_bound 31) (int_bound 31) (int_bound 31))
    (fun (a, b, c) ->
      let t = paper_mesh () in
      Topology.hops t ~src:a ~dst:c
      <= Topology.hops t ~src:a ~dst:b + Topology.hops t ~src:b ~dst:c)

(* --- Alternative topologies ------------------------------------------- *)

let all_fabrics =
  [
    Topology.create ~rows:4 ~cols:8;
    Topology.create_torus ~rows:4 ~cols:8;
    Topology.create_ring ~tiles:32;
    Topology.create_crossbar ~tiles:32;
  ]

let route_connects t ~src ~dst =
  let route = Topology.route t ~src ~dst in
  let rec walk cur = function
    | [] -> cur = dst
    | l :: rest -> l.Topology.from_tile = cur && walk l.Topology.to_tile rest
  in
  walk src route

let test_all_fabrics_route_everywhere () =
  List.iter
    (fun t ->
      for src = 0 to Topology.tiles t - 1 do
        for dst = 0 to Topology.tiles t - 1 do
          check_bool
            (Printf.sprintf "%s %d->%d connects"
               (Topology.kind_name (Topology.kind t))
               src dst)
            true (route_connects t ~src ~dst);
          check_int "route length = hops"
            (Topology.hops t ~src ~dst)
            (List.length (Topology.route t ~src ~dst))
        done
      done)
    all_fabrics

let test_all_fabric_links_indexable () =
  List.iter
    (fun t ->
      let indices = List.map (Topology.link_index t) (Topology.links t) in
      check_int
        (Topology.kind_name (Topology.kind t) ^ " indices distinct")
        (List.length indices)
        (List.length (List.sort_uniq compare indices));
      List.iter
        (fun i ->
          check_bool "index in bounds" true (i >= 0 && i < Topology.num_links t))
        indices)
    all_fabrics

let test_torus_uses_wraparound () =
  let t = Topology.create_torus ~rows:4 ~cols:8 in
  (* column 0 to column 7 is one wrap hop, not seven mesh hops *)
  check_int "wrap shortcut" 1 (Topology.hops t ~src:0 ~dst:7);
  let mesh = Topology.create ~rows:4 ~cols:8 in
  check_int "mesh goes the long way" 7 (Topology.hops mesh ~src:0 ~dst:7)

let test_ring_shortest_direction () =
  let t = Topology.create_ring ~tiles:32 in
  check_int "short way round" 2 (Topology.hops t ~src:1 ~dst:31);
  check_int "diameter" 16 (Topology.hops t ~src:0 ~dst:16)

let test_crossbar_single_hop () =
  let t = Topology.create_crossbar ~tiles:32 in
  for dst = 1 to 31 do
    check_int "one hop" 1 (Topology.hops t ~src:0 ~dst)
  done;
  check_int "all-to-all links" (32 * 31) (List.length (Topology.links t))

let test_fabric_constructors_validate () =
  Alcotest.check_raises "tiny torus"
    (Invalid_argument "Topology.create_torus: dimensions must be at least 3")
    (fun () -> ignore (Topology.create_torus ~rows:2 ~cols:4));
  Alcotest.check_raises "tiny ring"
    (Invalid_argument "Topology.create_ring: need at least 3 tiles") (fun () ->
      ignore (Topology.create_ring ~tiles:2))

let prop_torus_hops_bounded_by_mesh =
  QCheck.Test.make ~name:"torus routes never longer than mesh routes"
    ~count:200
    QCheck.(pair (int_bound 31) (int_bound 31))
    (fun (src, dst) ->
      let mesh = Topology.create ~rows:4 ~cols:8 in
      let torus = Topology.create_torus ~rows:4 ~cols:8 in
      Topology.hops torus ~src ~dst <= Topology.hops mesh ~src ~dst)

(* --- Message --------------------------------------------------------- *)

let test_message_sizes () =
  check_int "control 1 flit" 1 (Message.flits Message.Control);
  check_int "data 5 flits" 5 (Message.flits Message.Data);
  check_int "control serialisation" 0
    (Message.serialization_cycles Message.Control);
  check_int "data serialisation" 4 (Message.serialization_cycles Message.Data)

(* --- Network --------------------------------------------------------- *)

let test_latency_local () =
  let net = Network.create (paper_mesh ()) in
  check_int "local control" 0
    (Network.latency net ~src:3 ~dst:3 ~class_:Message.Control);
  check_int "local data" 4
    (Network.latency net ~src:3 ~dst:3 ~class_:Message.Data)

let test_latency_scales_with_hops () =
  let net = Network.create (paper_mesh ()) in
  (* 1 hop, link+router = 2 cycles per hop *)
  check_int "one hop control" 2
    (Network.latency net ~src:0 ~dst:1 ~class_:Message.Control);
  (* corner to corner: 10 hops *)
  check_int "ten hops data"
    ((10 * 2) + 4)
    (Network.latency net ~src:0 ~dst:31 ~class_:Message.Data)

let test_custom_latencies () =
  let net = Network.create ~link_latency:3 ~router_latency:0 (paper_mesh ()) in
  check_int "3 per hop" 6
    (Network.latency net ~src:0 ~dst:2 ~class_:Message.Control)

let test_send_accounts_traffic () =
  let net = Network.create (paper_mesh ()) in
  ignore (Network.send net ~src:0 ~dst:3 ~class_:Message.Data);
  ignore (Network.send net ~src:0 ~dst:3 ~class_:Message.Control);
  check_int "messages" 2 (Network.messages_sent net);
  check_int "flits" 6 (Network.flits_sent net);
  let util = Network.link_utilisation net in
  check_int "three busy links" 3 (List.length util);
  List.iter (fun (_, flits) -> check_int "flits per link" 6 flits) util

let test_send_equals_latency () =
  let net = Network.create (paper_mesh ()) in
  check_int "send returns latency"
    (Network.latency net ~src:2 ~dst:9 ~class_:Message.Data)
    (Network.send net ~src:2 ~dst:9 ~class_:Message.Data)

let test_contention_queueing () =
  let net = Network.create ~contention:true (paper_mesh ()) in
  (* two data messages over the same first link at the same cycle: the
     second queues behind the first's flits *)
  let a = Network.send ~now:100 net ~src:0 ~dst:3 ~class_:Message.Data in
  let b = Network.send ~now:100 net ~src:0 ~dst:3 ~class_:Message.Data in
  check_int "first uncontended"
    (Network.latency net ~src:0 ~dst:3 ~class_:Message.Data)
    a;
  check_bool "second delayed" true (b > a);
  check_bool "queueing recorded" true (Network.queueing_cycles net > 0)

let test_contention_disjoint_paths_free () =
  let net = Network.create ~contention:true (paper_mesh ()) in
  ignore (Network.send ~now:50 net ~src:0 ~dst:1 ~class_:Message.Data);
  (* a message on disjoint links is unaffected *)
  let lat = Network.send ~now:50 net ~src:16 ~dst:17 ~class_:Message.Data in
  check_int "no delay on disjoint links"
    (Network.latency net ~src:16 ~dst:17 ~class_:Message.Data)
    lat

let test_contention_drains_over_time () =
  let net = Network.create ~contention:true (paper_mesh ()) in
  ignore (Network.send ~now:0 net ~src:0 ~dst:7 ~class_:Message.Data);
  (* much later, the links are free again *)
  let lat = Network.send ~now:1000 net ~src:0 ~dst:7 ~class_:Message.Data in
  check_int "free again"
    (Network.latency net ~src:0 ~dst:7 ~class_:Message.Data)
    lat

let test_no_contention_by_default () =
  let net = Network.create (paper_mesh ()) in
  check_bool "off by default" false (Network.contention net);
  ignore (Network.send ~now:0 net ~src:0 ~dst:3 ~class_:Message.Data);
  let lat = Network.send ~now:0 net ~src:0 ~dst:3 ~class_:Message.Data in
  check_int "no queueing without the model"
    (Network.latency net ~src:0 ~dst:3 ~class_:Message.Data)
    lat;
  check_int "queueing zero" 0 (Network.queueing_cycles net)

let test_reset_traffic () =
  let net = Network.create (paper_mesh ()) in
  ignore (Network.send net ~src:0 ~dst:5 ~class_:Message.Data);
  Network.reset_traffic net;
  check_int "messages zero" 0 (Network.messages_sent net);
  check_bool "no busy links" true (Network.link_utilisation net = [])

let () =
  Alcotest.run "mesh"
    [
      ( "coord",
        [
          Alcotest.test_case "roundtrip" `Quick test_coord_roundtrip;
          Alcotest.test_case "layout" `Quick test_coord_layout;
          Alcotest.test_case "manhattan" `Quick test_coord_manhattan;
        ] );
      ( "topology",
        [
          Alcotest.test_case "tile count" `Quick test_topology_tiles;
          Alcotest.test_case "route length" `Quick
            test_route_length_is_manhattan;
          Alcotest.test_case "self route" `Quick test_route_self_empty;
          Alcotest.test_case "connected path" `Quick
            test_route_is_connected_path;
          Alcotest.test_case "x before y" `Quick test_route_xy_order;
          Alcotest.test_case "range check" `Quick test_out_of_range_rejected;
          Alcotest.test_case "link count" `Quick test_links_count;
          Alcotest.test_case "link indices" `Quick test_link_index_distinct;
          QCheck_alcotest.to_alcotest prop_hops_symmetric;
          QCheck_alcotest.to_alcotest prop_hops_triangle;
        ] );
      ( "fabrics",
        [
          Alcotest.test_case "all routes connect" `Quick
            test_all_fabrics_route_everywhere;
          Alcotest.test_case "links indexable" `Quick
            test_all_fabric_links_indexable;
          Alcotest.test_case "torus wraparound" `Quick
            test_torus_uses_wraparound;
          Alcotest.test_case "ring shortest direction" `Quick
            test_ring_shortest_direction;
          Alcotest.test_case "crossbar single hop" `Quick
            test_crossbar_single_hop;
          Alcotest.test_case "constructor validation" `Quick
            test_fabric_constructors_validate;
          QCheck_alcotest.to_alcotest prop_torus_hops_bounded_by_mesh;
        ] );
      ("message", [ Alcotest.test_case "sizes" `Quick test_message_sizes ]);
      ( "network",
        [
          Alcotest.test_case "local latency" `Quick test_latency_local;
          Alcotest.test_case "latency scales" `Quick
            test_latency_scales_with_hops;
          Alcotest.test_case "custom latency" `Quick test_custom_latencies;
          Alcotest.test_case "traffic accounting" `Quick
            test_send_accounts_traffic;
          Alcotest.test_case "send = latency" `Quick test_send_equals_latency;
          Alcotest.test_case "contention queueing" `Quick
            test_contention_queueing;
          Alcotest.test_case "contention disjoint paths" `Quick
            test_contention_disjoint_paths_free;
          Alcotest.test_case "contention drains" `Quick
            test_contention_drains_over_time;
          Alcotest.test_case "contention off by default" `Quick
            test_no_contention_by_default;
          Alcotest.test_case "reset" `Quick test_reset_traffic;
        ] );
    ]
