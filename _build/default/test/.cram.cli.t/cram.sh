  $ lockiller_sim list
  $ lockiller_sim params --cores 4
  $ lockiller_sim custom ../examples/custom_workload.txt --cores 4 -s Baseline | head -7
  $ lockiller_sim sweep -w micro-counter --threads 2,4 --cores 4 --metric commit-rate
  $ lockiller_sim run -s NoSuchSystem -w genome -t 2 --cores 4 2>&1 | head -1
  $ lockiller_sim experiment fig99 2>&1 | head -1
