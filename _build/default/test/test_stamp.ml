(* Tests of the synthetic STAMP workload generators: determinism,
   profile validity, structural properties (set sizes, fault rates,
   address-region discipline) and the conservation bookkeeping the
   runner relies on. *)

module Rng = Lk_engine.Rng
module Addr = Lk_coherence.Addr
module Program = Lk_cpu.Program
module Workload = Lk_stamp.Workload
module Suite = Lk_stamp.Suite

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let gen ?(threads = 4) ?(seed = 1) ?(scale = 1.0) p =
  Workload.generate p ~threads ~seed ~scale

(* --- suite ------------------------------------------------------------ *)

let test_suite_composition () =
  check_int "nine workloads (STAMP minus bayes, two kmeans/vacation)" 9
    (List.length Suite.all);
  Alcotest.(check (list string))
    "paper order"
    [
      "genome"; "intruder"; "kmeans"; "kmeans+"; "labyrinth"; "ssca2";
      "vacation"; "vacation+"; "yada";
    ]
    Suite.names

let test_suite_find () =
  check_bool "find case-insensitive" true (Suite.find "GENOME" <> None);
  check_bool "find kmeans+" true (Suite.find "kmeans+" <> None);
  check_bool "unknown" true (Suite.find "quicksort" = None)

let test_suite_extras () =
  (* bayes is excluded from the paper's set but available as an extra *)
  check_bool "bayes not in the paper set" true
    (not (List.mem "bayes" Suite.names));
  check_bool "bayes findable" true (Suite.find "bayes" <> None);
  check_bool "micro-counter findable" true
    (Suite.find "micro-counter" <> None);
  List.iter
    (fun p ->
      match Workload.validate p with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "extra invalid: %s" msg)
    Suite.extras;
  (* extras generate runnable programs too *)
  List.iter
    (fun p ->
      check_bool
        (p.Workload.name ^ " generates")
        true
        (Program.validate (gen p) = Ok ()))
    Suite.extras

let test_all_profiles_valid () =
  List.iter
    (fun p ->
      match Workload.validate p with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "invalid profile: %s" msg)
    Suite.all

let test_high_contention_subset () =
  List.iter
    (fun p -> check_bool "member of suite" true (List.memq p Suite.all))
    Suite.high_contention

(* --- generation ------------------------------------------------------- *)

let test_generation_deterministic () =
  List.iter
    (fun p ->
      let a = gen p and b = gen p in
      check_bool (p.Workload.name ^ " deterministic") true (a = b))
    Suite.all

let test_generation_seed_sensitive () =
  let p = List.hd Suite.all in
  let a = gen ~seed:1 p and b = gen ~seed:2 p in
  check_bool "different seeds differ" true (a <> b)

let test_generation_thread_count () =
  let p = List.hd Suite.all in
  check_int "threads" 7 (Array.length (gen ~threads:7 p))

let test_generation_scale () =
  let p = List.hd Suite.all in
  let full = gen ~scale:1.0 p and half = gen ~scale:0.5 p in
  check_int "scaled tx count"
    (List.length full.(0) / 2)
    (List.length half.(0));
  let tiny = gen ~scale:0.0001 p in
  check_int "scale floor of one tx" 1 (List.length tiny.(0))

let test_generated_programs_validate () =
  List.iter
    (fun p ->
      match Program.validate (gen p) with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: %s" p.Workload.name msg)
    Suite.all

let body_stats p =
  let program = gen p in
  let reads = ref 0 and writes = ref 0 and faults = ref 0 and txs = ref 0 in
  Array.iter
    (List.iter (fun tx ->
         incr txs;
         List.iter
           (function
             | Program.Read _ -> incr reads
             | Program.Write _ | Program.Incr _ | Program.Add _ -> incr writes
             | Program.Fault -> incr faults
             | Program.Compute _ -> ())
           tx.Program.ops))
    program;
  (!txs, !reads, !writes, !faults)

let test_read_write_ranges () =
  List.iter
    (fun p ->
      let txs, reads, writes, _ = body_stats p in
      let lo_r, hi_r = p.Workload.reads_per_tx in
      let lo_w, hi_w = p.Workload.writes_per_tx in
      let avg_r = float_of_int reads /. float_of_int txs in
      let avg_w = float_of_int writes /. float_of_int txs in
      check_bool
        (Printf.sprintf "%s: avg reads %.1f in [%d,%d]" p.Workload.name avg_r
           lo_r hi_r)
        true
        (avg_r >= float_of_int lo_r && avg_r <= float_of_int hi_r);
      check_bool
        (Printf.sprintf "%s: avg writes %.1f in [%d,%d]" p.Workload.name avg_w
           lo_w hi_w)
        true
        (avg_w >= float_of_int lo_w && avg_w <= float_of_int hi_w))
    Suite.all

let test_fault_rates () =
  List.iter
    (fun p ->
      let txs, _, _, faults = body_stats p in
      let rate = float_of_int faults /. float_of_int txs in
      if p.Workload.fault_prob = 0.0 then
        check_int (p.Workload.name ^ ": no faults") 0 faults
      else
        check_bool
          (Printf.sprintf "%s: fault rate %.2f near %.2f" p.Workload.name rate
             p.Workload.fault_prob)
          true
          (abs_float (rate -. p.Workload.fault_prob) < 0.15))
    Suite.all

let test_addresses_line_aligned_and_clear_of_lock () =
  List.iter
    (fun p ->
      List.iter
        (fun a ->
          check_int "line aligned" 0 (a mod Addr.line_size);
          check_bool "clear of the lock line" true
            (Addr.line_of_byte a <> Addr.line_of_byte Workload.lock_addr))
        (Program.touched_addresses (gen p)))
    Suite.all

let test_yada_is_fault_prone () =
  let yada = Option.get (Suite.find "yada") in
  check_bool "yada faults a lot" true (yada.Workload.fault_prob > 0.5);
  let genome = Option.get (Suite.find "genome") in
  check_bool "genome does not fault" true (genome.Workload.fault_prob = 0.0)

let test_labyrinth_overflows_typical_l1 () =
  (* labyrinth's minimum read set alone exceeds one 4-way L1's
     conflict-free capacity in expectation *)
  let labyrinth = Option.get (Suite.find "labyrinth") in
  check_bool "large read sets" true (fst labyrinth.Workload.reads_per_tx > 100)

let test_plus_variants_more_contended () =
  let pairs = [ ("kmeans", "kmeans+"); ("vacation", "vacation+") ] in
  List.iter
    (fun (low, high) ->
      let l = Option.get (Suite.find low) and h = Option.get (Suite.find high) in
      check_bool (high ^ " has smaller hot set") true
        (h.Workload.hot_lines < l.Workload.hot_lines);
      check_bool (high ^ " has at least the hot fraction") true
        (h.Workload.hot_fraction >= l.Workload.hot_fraction))
    pairs

(* --- conservation bookkeeping ----------------------------------------- *)

let test_expected_increments_match_program () =
  List.iter
    (fun p ->
      let program = gen p in
      let expected = Workload.expected_hot_increments p ~threads:4 ~seed:1 ~scale:1.0 in
      (* recount from the program *)
      let counts = Hashtbl.create 64 in
      Array.iter
        (List.iter (fun tx ->
             List.iter
               (function
                 | Program.Incr a ->
                   Hashtbl.replace counts a
                     (1 + Option.value ~default:0 (Hashtbl.find_opt counts a))
                 | _ -> ())
               tx.Program.ops))
        program;
      List.iter
        (fun (a, n) ->
          check_int
            (Printf.sprintf "%s: increments at %#x" p.Workload.name a)
            n
            (Option.value ~default:0 (Hashtbl.find_opt counts a)))
        expected)
    Suite.all

let test_hot_addresses_cover_increment_targets () =
  List.iter
    (fun p ->
      let hot = Workload.hot_addresses p in
      Array.iter
        (List.iter (fun tx ->
             List.iter
               (function
                 | Program.Incr a ->
                   check_bool "incr target is hot" true (List.mem a hot)
                 | _ -> ())
               tx.Program.ops))
        (gen p))
    Suite.all

(* --- properties -------------------------------------------------------- *)

let profile_gen =
  QCheck.Gen.(
    let* hot_lines = 1 -- 64 in
    let* shared = 64 -- 1024 in
    let* r_lo = 1 -- 10 in
    let* r_hi = r_lo -- 30 in
    let* w_lo = 0 -- 5 in
    let* w_hi = w_lo -- 10 in
    let* hot_fraction = float_bound_inclusive 1.0 in
    let* fault = float_bound_inclusive 0.5 in
    return
      {
        Workload.name = "prop";
        txs_per_thread = 5;
        reads_per_tx = (r_lo, r_hi);
        writes_per_tx = (w_lo, w_hi);
        hot_lines;
        hot_fraction;
        zipf_skew = 0.5;
        shared_lines = shared;
        private_lines = 16;
        compute_per_op = 1;
        pre_compute = (5, 10);
        post_compute = (5, 10);
        fault_prob = fault;
    barrier_every = None;
      })

let prop_random_profiles_generate_valid_programs =
  QCheck.Test.make ~name:"random profiles generate valid programs" ~count:50
    (QCheck.make profile_gen)
    (fun p ->
      match Workload.validate p with
      | Error _ -> QCheck.assume_fail ()
      | Ok () ->
        let program = Workload.generate p ~threads:3 ~seed:7 ~scale:1.0 in
        Program.validate program = Ok ()
        && Array.length program = 3
        && Array.for_all (fun th -> List.length th = 5) program)

let prop_generation_is_pure =
  QCheck.Test.make ~name:"generation twice gives identical programs" ~count:30
    (QCheck.make profile_gen)
    (fun p ->
      match Workload.validate p with
      | Error _ -> QCheck.assume_fail ()
      | Ok () ->
        Workload.generate p ~threads:2 ~seed:3 ~scale:1.0
        = Workload.generate p ~threads:2 ~seed:3 ~scale:1.0)

(* --- program module ----------------------------------------------------- *)

let test_program_op_count () =
  check_int "op count" 12
    (Program.op_count
       [
         Program.Compute 10;
         Program.Read 64;
         Program.Incr 128;
       ])

let test_program_transactions () =
  let p =
    [|
      [ { Program.pre_compute = 0; ops = []; post_compute = 0 } ];
      [
        { Program.pre_compute = 0; ops = []; post_compute = 0 };
        { Program.pre_compute = 0; ops = []; post_compute = 0 };
      ];
    |]
  in
  check_int "three transactions" 3 (Program.transactions p)

let test_program_touched_addresses () =
  let p =
    [|
      [
        {
          Program.pre_compute = 0;
          ops =
            [
              Program.Read 128; Program.Write (64, 1); Program.Incr 128;
              Program.Add (192, -1); Program.Compute 5; Program.Fault;
            ];
          post_compute = 0;
        };
      ];
    |]
  in
  Alcotest.(check (list int)) "distinct sorted" [ 64; 128; 192 ]
    (Program.touched_addresses p)

let test_program_text_roundtrip () =
  List.iter
    (fun profile ->
      let program = gen ~threads:3 profile in
      match Program.of_text (Program.to_text program) with
      | Ok parsed ->
        check_bool (profile.Workload.name ^ " roundtrips") true
          (parsed = program)
      | Error msg -> Alcotest.failf "%s: %s" profile.Workload.name msg)
    Suite.all

let test_program_text_parsing () =
  let text =
    "# demo\n\
     thread\n\
     \  tx pre=5 post=7\n\
     \    compute 3\n\
     \    read 0x1000\n\
     \    write 0x2000 9\n\
     \    incr 4096\n\
     \    add 0x3000 -2\n\
     \    fault\n\
     thread\n\
     \  tx pre=0 post=0\n\
     \    incr 0x1000\n"
  in
  match Program.of_text text with
  | Error msg -> Alcotest.fail msg
  | Ok p ->
    check_int "two threads" 2 (Array.length p);
    let tx = List.hd p.(0) in
    check_int "pre" 5 tx.Program.pre_compute;
    check_int "post" 7 tx.Program.post_compute;
    check_int "six ops" 6 (List.length tx.Program.ops);
    check_bool "hex and decimal agree" true
      (List.mem (Program.Incr 4096) tx.Program.ops
      && List.mem (Program.Read 4096) tx.Program.ops)

let test_program_text_errors () =
  let bad cases =
    List.iter
      (fun (text, why) ->
        match Program.of_text text with
        | Ok _ -> Alcotest.failf "accepted bad input (%s)" why
        | Error _ -> ())
      cases
  in
  bad
    [
      ("", "empty");
      ("thread\n  read 0x100\n", "op outside tx");
      ("thread\n  tx pre=1\n", "missing post");
      ("thread\n  tx pre=1 post=1\n    frobnicate 3\n", "unknown op");
      ("thread\n  tx pre=x post=1\n", "bad int");
    ]

let test_program_validate_rejects_negative () =
  let bad =
    [|
      [ { Program.pre_compute = -1; ops = []; post_compute = 0 } ];
    |]
  in
  check_bool "negative pre rejected" true (Program.validate bad <> Ok ())

let () =
  Alcotest.run "stamp"
    [
      ( "suite",
        [
          Alcotest.test_case "composition" `Quick test_suite_composition;
          Alcotest.test_case "find" `Quick test_suite_find;
          Alcotest.test_case "extras" `Quick test_suite_extras;
          Alcotest.test_case "profiles valid" `Quick test_all_profiles_valid;
          Alcotest.test_case "high-contention subset" `Quick
            test_high_contention_subset;
        ] );
      ( "generation",
        [
          Alcotest.test_case "deterministic" `Quick
            test_generation_deterministic;
          Alcotest.test_case "seed sensitive" `Quick
            test_generation_seed_sensitive;
          Alcotest.test_case "thread count" `Quick test_generation_thread_count;
          Alcotest.test_case "scaling" `Quick test_generation_scale;
          Alcotest.test_case "programs validate" `Quick
            test_generated_programs_validate;
          Alcotest.test_case "read/write ranges" `Quick test_read_write_ranges;
          Alcotest.test_case "fault rates" `Quick test_fault_rates;
          Alcotest.test_case "address discipline" `Quick
            test_addresses_line_aligned_and_clear_of_lock;
          Alcotest.test_case "yada faults, genome not" `Quick
            test_yada_is_fault_prone;
          Alcotest.test_case "labyrinth large sets" `Quick
            test_labyrinth_overflows_typical_l1;
          Alcotest.test_case "plus variants contended" `Quick
            test_plus_variants_more_contended;
          QCheck_alcotest.to_alcotest
            prop_random_profiles_generate_valid_programs;
          QCheck_alcotest.to_alcotest prop_generation_is_pure;
        ] );
      ( "conservation",
        [
          Alcotest.test_case "expected increments" `Quick
            test_expected_increments_match_program;
          Alcotest.test_case "hot address coverage" `Quick
            test_hot_addresses_cover_increment_targets;
        ] );
      ( "program",
        [
          Alcotest.test_case "op count" `Quick test_program_op_count;
          Alcotest.test_case "transactions" `Quick test_program_transactions;
          Alcotest.test_case "touched addresses" `Quick
            test_program_touched_addresses;
          Alcotest.test_case "validate" `Quick
            test_program_validate_rejects_negative;
          Alcotest.test_case "text roundtrip" `Quick
            test_program_text_roundtrip;
          Alcotest.test_case "text parsing" `Quick test_program_text_parsing;
          Alcotest.test_case "text errors" `Quick test_program_text_errors;
        ] );
    ]
