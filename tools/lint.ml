(* Hot-path lint for the simulator's inner-loop libraries.

   The event engine, the coherence protocol and the HTM value layer run
   once per simulated message; a polymorphic comparison, a generic
   [Hashtbl] or a [Printf] that sneaks into them costs real time (and,
   for [compare] on abstract types, correctness risk). dune cannot
   express "this library must not use these Stdlib identifiers", so
   this is a small lexical checker:

     - poly-compare: bare [compare] / [max] / [min] (use [Int.compare],
       [Int.max], [Int.min] — monomorphic and inlined), and comparison
       operators used as function values: [(=)], [(<>)], [(<)], [(>)],
       [(<=)], [(>=)] (passing them forces the polymorphic path even on
       ints). Infix uses of [=] on immediates compile fine and are not
       (and cannot lexically be) flagged.
     - hashtbl: any use of [Hashtbl] (use [Lk_engine.Int_table] for
       int keys; generic hashing allocates and calls through [compare]).
     - printf: any use of [Printf] (hot code reports through [Stats] /
       [Ledger]; diagnostics use [Format] or string concatenation on
       cold paths).
     - bare-schedule: a qualified [Sim.schedule] / [Sim.schedule_at] in
       a file that also manages tile-owned state (it registers race
       regions or uses [Sim.schedule_tile]). Such a file has committed
       to the partition-ownership contract, and a bare schedule drops
       the event into whatever partition happens to be running — the
       exact bug class the race detector exists to catch. Use
       [Sim.schedule_tile]; annotate deliberate exceptions (e.g. the
       fault-injection path) with [lint-ok].

   Comments and string literals are stripped before matching, so
   prose mentioning the forbidden identifiers is fine. Suppression:
   append [lint-ok] in a comment on the offending line, or grant a
   file-wide waiver with a [lint: allow <rule>] pragma comment (the
   pragma must state why). *)

let scanned_dirs =
  [
    "lib/engine"; "lib/mesh"; "lib/coherence"; "lib/htm"; "lib/trace";
    "lib/check";
  ]

type finding = { file : string; line : int; rule : string; message : string }

(* Replace comments and string/char literals with spaces (newlines
   kept, so line numbers survive). OCaml comments nest, and a string
   literal inside a comment must itself be balanced — the lexer below
   mirrors that. Returns (code, suppressed_lines, allowed_rules). *)
let strip src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let suppressed = ref [] in
  let allowed = ref [] in
  let line = ref 1 in
  let comment_buf = Buffer.create 64 in
  let comment_line = ref 1 in
  let i = ref 0 in
  let depth = ref 0 in
  let in_string = ref false in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then incr line;
    (if !in_string then begin
       blank !i;
       if c = '\\' && !i + 1 < n then begin
         blank (!i + 1);
         incr i
       end
       else if c = '"' then in_string := false
     end
     else if !depth > 0 then begin
       blank !i;
       if !depth > 0 then Buffer.add_char comment_buf c;
       if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
         blank (!i + 1);
         Buffer.add_char comment_buf '*';
         incr depth;
         incr i
       end
       else if c = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
         blank (!i + 1);
         Buffer.add_char comment_buf ')';
         decr depth;
         incr i;
         if !depth = 0 then begin
           (* Comment closed: interpret its text. *)
           let text = Buffer.contents comment_buf in
           let contains sub =
             let ls = String.length sub and lt = String.length text in
             let rec go j = j + ls <= lt && (String.sub text j ls = sub || go (j + 1)) in
             go 0
           in
           if contains "lint-ok" then
             for l = !comment_line to !line do
               suppressed := l :: !suppressed
             done;
           List.iter
             (fun rule ->
               if contains ("lint: allow " ^ rule) then
                 allowed := rule :: !allowed)
             [ "poly-compare"; "hashtbl"; "printf"; "bare-schedule" ];
           Buffer.clear comment_buf
         end
       end
       else if c = '"' then begin
         (* A string inside a comment: skip to its end. *)
         incr i;
         let fin = ref false in
         while (not !fin) && !i < n do
           if src.[!i] = '\n' then incr line;
           blank !i;
           Buffer.add_char comment_buf src.[!i];
           if src.[!i] = '\\' && !i + 1 < n then begin
             blank (!i + 1);
             incr i
           end
           else if src.[!i] = '"' then fin := true;
           incr i
         done;
         decr i
       end
     end
     else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
       blank !i;
       blank (!i + 1);
       depth := 1;
       comment_line := !line;
       Buffer.clear comment_buf;
       incr i
     end
     else if c = '"' then begin
       blank !i;
       in_string := true
     end
     else if c = '\'' then
       (* Char literal or type variable. ['x'] and ['\n'] are chars;
          ['a] is a type variable and passes through. *)
       if !i + 2 < n && src.[!i + 1] <> '\\' && src.[!i + 2] = '\'' then begin
         blank !i;
         blank (!i + 1);
         blank (!i + 2);
         i := !i + 2
       end
       else if !i + 1 < n && src.[!i + 1] = '\\' then begin
         let j = ref (!i + 2) in
         while !j < n && src.[!j] <> '\'' do
           incr j
         done;
         for k = !i to min !j (n - 1) do
           blank k
         done;
         i := !j
       end);
    incr i
  done;
  (Bytes.to_string out, !suppressed, !allowed)

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

(* Previous non-blank character before position i, or ' '. *)
let prev_nonblank code i =
  let j = ref (i - 1) in
  while !j >= 0 && (code.[!j] = ' ' || code.[!j] = '\t') do
    decr j
  done;
  if !j >= 0 then code.[!j] else ' '

let line_of_offset code i =
  let l = ref 1 in
  for j = 0 to i - 1 do
    if code.[j] = '\n' then incr l
  done;
  !l

let check_file file =
  let src =
    let ic = open_in_bin file in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let code, suppressed, allowed = strip src in
  let findings = ref [] in
  let report i rule message =
    let line = line_of_offset code i in
    if (not (List.mem line suppressed)) && not (List.mem rule allowed) then
      findings := { file; line; rule; message } :: !findings
  in
  let n = String.length code in
  (* Identifier tokens. *)
  let i = ref 0 in
  while !i < n do
    if
      is_ident_char code.[!i]
      && ((!i = 0) || not (is_ident_char code.[!i - 1]))
    then begin
      let j = ref !i in
      while !j < n && is_ident_char code.[!j] do
        incr j
      done;
      let tok = String.sub code !i (!j - !i) in
      let qualified = prev_nonblank code !i = '.' in
      (match tok with
      | "compare" | "max" | "min" when not qualified ->
        report !i "poly-compare"
          (Printf.sprintf
             "bare [%s] is the polymorphic Stdlib one; use [Int.%s] (or a \
              monomorphic equivalent)"
             tok tok)
      | "Hashtbl" ->
        report !i "hashtbl"
          "generic [Hashtbl] on a hot path; use [Lk_engine.Int_table] for \
           int keys"
      | "Printf" ->
        report !i "printf"
          "[Printf] on a hot path; report through [Stats]/[Ledger], or use \
           [Format] on cold paths"
      | _ -> ());
      i := !j
    end
    else incr i
  done;
  (* bare-schedule: a qualified [Sim.schedule]/[Sim.schedule_at] in a
     file that manages tile-owned state. The two markers of that
     commitment — [schedule_tile] and [register_region] — are matched
     on the stripped code, so a file that merely documents them is not
     held to the contract. *)
  let contains sub =
    let ls = String.length sub in
    let rec go j =
      j + ls <= n
      && ((String.sub code j ls = sub
          && (j = 0 || not (is_ident_char code.[j - 1]))
          && (j + ls >= n || not (is_ident_char code.[j + ls])))
         || go (j + 1))
    in
    go 0
  in
  if contains "schedule_tile" || contains "register_region" then begin
    let pat = "Sim.schedule" in
    let lp = String.length pat in
    let i = ref 0 in
    while !i + lp <= n do
      (if
         String.sub code !i lp = pat
         && (!i = 0 || not (is_ident_char code.[!i - 1]))
       then
         let j = !i + lp in
         let bare =
           if j >= n then true
           else if not (is_ident_char code.[j]) then true
           else
             j + 3 <= n
             && String.sub code j 3 = "_at"
             && (j + 3 >= n || not (is_ident_char code.[j + 3]))
         in
         if bare then
           report !i "bare-schedule"
             "bare [Sim.schedule] in a file with tile-owned state; use \
              [Sim.schedule_tile] so the event runs in the owning \
              partition (mark deliberate exceptions with lint-ok)");
      incr i
    done
  end;
  (* Comparison operators as function values: ( = ), (<>), ... *)
  let ops = [ "<>"; "<="; ">="; "="; "<"; ">" ] in
  let i = ref 0 in
  while !i < n do
    if code.[!i] = '(' then begin
      let j = ref (!i + 1) in
      while !j < n && (code.[!j] = ' ' || code.[!j] = '\t') do
        incr j
      done;
      List.iter
        (fun op ->
          let lo = String.length op in
          if !j + lo < n && String.sub code !j lo = op then begin
            let k = ref (!j + lo) in
            while !k < n && (code.[!k] = ' ' || code.[!k] = '\t') do
              incr k
            done;
            if !k < n && code.[!k] = ')' then begin
              report !i "poly-compare"
                (Printf.sprintf
                   "[(%s)] as a function value is the polymorphic compare; \
                    wrap a monomorphic comparison instead"
                   op);
              i := !k
            end
          end)
        ops
    end;
    incr i
  done;
  List.rev !findings

let () =
  let root =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else Filename.current_dir_name
  in
  let files =
    List.concat_map
      (fun dir ->
        let abs = Filename.concat root dir in
        if not (Sys.file_exists abs) then begin
          Printf.eprintf "lint: missing directory %s\n" abs;
          exit 2
        end;
        Sys.readdir abs |> Array.to_list |> List.sort String.compare
        |> List.filter (fun f -> Filename.check_suffix f ".ml")
        |> List.map (Filename.concat abs))
      scanned_dirs
  in
  let findings = List.concat_map check_file files in
  List.iter
    (fun f ->
      Printf.printf "%s:%d: %s: %s\n" f.file f.line f.rule f.message)
    findings;
  if findings = [] then begin
    Printf.printf "lint: %d files clean\n" (List.length files);
    exit 0
  end
  else begin
    Printf.printf "lint: %d finding(s)\n" (List.length findings);
    exit 1
  end
