(* Where does the coherence traffic go? Run one contended workload on
   the paper's 4x8 mesh and render per-tile traffic as an ASCII heat
   map, plus the hottest links. The fallback lock lives on tile 0 and
   hot records are interleaved low, so the left edge glows — which is
   also why the Spread thread placement (see the `placement` experiment)
   helps a little.

     dune exec examples/noc_heatmap.exe *)

module Topology = Lockiller.Mesh.Topology
module Network = Lockiller.Mesh.Network
module Runner = Lockiller.Sim.Runner
module Config = Lockiller.Sim.Config
module Sysconf = Lockiller.Mechanisms.Sysconf
module Runtime = Lockiller.Mechanisms.Runtime
module Protocol = Lockiller.Coherence.Protocol

let () =
  let workload = Option.get (Lockiller.Stamp.Suite.find "intruder") in
  let net = ref None in
  let r =
    Runner.run
      ~options:
        {
          Runner.default_options with
          on_runtime =
            (fun rt -> net := Some (Protocol.network (Runtime.protocol rt)));
        }
      ~sysconf:Sysconf.lockiller ~workload ~threads:32 ()
  in
  let net = Option.get !net in
  let topo = Network.topology net in
  let rows = Topology.rows topo and cols = Topology.cols topo in
  (* per-tile traffic = flits on its outgoing links *)
  let tile_flits = Array.make (Topology.tiles topo) 0 in
  List.iter
    (fun (link, flits) ->
      let t = link.Topology.from_tile in
      tile_flits.(t) <- tile_flits.(t) + flits)
    (Network.link_utilisation net);
  let max_flits = Array.fold_left max 1 tile_flits in
  let shades = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |] in
  Printf.printf
    "intruder / LockillerTM / 32 threads: %d cycles, %d messages, %d flits\n\n"
    r.Runner.cycles r.Runner.network_messages r.Runner.network_flits;
  Printf.printf "Per-tile outgoing flits (@ = hottest):\n\n";
  for row = 0 to rows - 1 do
    Printf.printf "  ";
    for col = 0 to cols - 1 do
      let t = (row * cols) + col in
      let level = tile_flits.(t) * (Array.length shades - 1) / max_flits in
      Printf.printf " %c%c " shades.(level) shades.(level)
    done;
    print_newline ();
    Printf.printf "  ";
    for col = 0 to cols - 1 do
      let t = (row * cols) + col in
      Printf.printf "%4d" (tile_flits.(t) / 1000)
    done;
    Printf.printf "   (kflits per tile)\n"
  done;
  print_newline ();
  Printf.printf "Hottest directed links:\n";
  List.iteri
    (fun i (link, flits) ->
      if i < 8 then
        Printf.printf "  tile %2d -> tile %2d : %7d flits\n"
          link.Topology.from_tile link.Topology.to_tile flits)
    (Network.link_utilisation net);
  print_newline ();
  Printf.printf
    "The home of the fallback lock (tile 0) and the low-numbered home banks\n\
     of the hot records dominate the traffic.\n"
