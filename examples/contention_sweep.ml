(* Where does LockillerTM's recovery mechanism pay off? Sweep the size
   of the contended hot set of a synthetic workload (smaller hot set =
   more conflicts) and watch the gap between requester-win best-effort
   HTM and LockillerTM open up.

     dune exec examples/contention_sweep.exe *)

module Workload = Lockiller.Stamp.Workload
module Sysconf = Lockiller.Mechanisms.Sysconf
module Runner = Lockiller.Sim.Runner
module Config = Lockiller.Sim.Config
module Metrics = Lockiller.Sim.Metrics

let base_profile hot_lines =
  {
    Workload.name = Printf.sprintf "sweep-%d" hot_lines;
    txs_per_thread = 40;
    reads_per_tx = (8, 16);
    writes_per_tx = (3, 6);
    hot_lines;
    hot_fraction = 0.6;
    zipf_skew = 0.7;
    shared_lines = 1024;
    private_lines = 32;
    compute_per_op = 2;
    pre_compute = (10, 30);
    post_compute = (10, 30);
    fault_prob = 0.0;
    barrier_every = None;
  }

let () =
  let threads = 16 in
  let options = { Runner.default_options with machine = Config.machine () } in
  Printf.printf
    "Contention sweep: %d threads; hot set shrinks left to right.\n\n" threads;
  Printf.printf "%-10s %-22s %-22s %s\n" "hot lines" "Baseline (vs CGL)"
    "LockillerTM (vs CGL)" "Lockiller/Baseline";
  List.iter
    (fun hot_lines ->
      let workload = base_profile hot_lines in
      let cycles sysconf =
        (Runner.run ~options ~sysconf ~workload ~threads ()).Runner.cycles
      in
      let cgl = cycles Sysconf.cgl in
      let base = cycles Sysconf.baseline in
      let lk = cycles Sysconf.lockiller in
      let rate sysconf =
        (Runner.run ~options ~sysconf ~workload ~threads ()).Runner.commit_rate
      in
      Printf.printf "%-10d %5.2fx (commit %4.0f%%)   %5.2fx (commit %4.0f%%)   %5.2fx\n"
        hot_lines
        (Metrics.speedup ~baseline_cycles:cgl ~cycles:base)
        (100.0 *. rate Sysconf.baseline)
        (Metrics.speedup ~baseline_cycles:cgl ~cycles:lk)
        (100.0 *. rate Sysconf.lockiller)
        (Metrics.speedup ~baseline_cycles:base ~cycles:lk))
    [ 256; 128; 64; 32; 16; 8; 4 ];
  print_newline ();
  Printf.printf
    "Under low contention both HTMs fly; as the hot set shrinks, friendly \
     fire\nstarves requester-win HTM while the recovery mechanism keeps at \
     least the\nhighest-priority transaction moving.\n"
