(* Abort breakdowns from the event ledger. Runs one contended workload
   under three Table II systems with the transaction-event ledger
   attached, then recomputes each run's abort mix from the recorded
   event stream (Lk_sim.Tracing.abort_breakdown) — the same data the
   CLI's --abort-breakdown flag prints — and cross-checks it against
   the runner's aggregate counters. Also writes a Perfetto timeline
   for the last run.

     dune exec examples/abort_breakdown.exe *)

module Runner = Lockiller.Sim.Runner
module Config = Lockiller.Sim.Config
module Tracing = Lockiller.Sim.Tracing
module Report = Lockiller.Sim.Report
module Suite = Lockiller.Stamp.Suite
module Sysconf = Lockiller.Mechanisms.Sysconf
module Runtime = Lockiller.Mechanisms.Runtime
module Reason = Lockiller.Htm.Reason

let workload = "intruder"
let threads = 8

let run_with_ledger sysconf =
  let w = Option.get (Suite.find workload) in
  let ledger = ref None in
  let r =
    Runner.run
      ~options:
        {
          Runner.default_options with
          scale = 0.2;
          on_runtime = (fun rt -> ledger := Some (Runtime.enable_ledger rt));
        }
      ~sysconf ~workload:w ~threads ()
  in
  (r, Option.get !ledger)

let () =
  Printf.printf
    "Abort breakdowns: %s, %d threads — the ledger's per-reason view of\n\
     what the recovery mechanisms change.\n\n" workload threads;
  let last = ref None in
  List.iter
    (fun sysconf ->
      let r, ledger = run_with_ledger sysconf in
      let b = Tracing.abort_breakdown ledger in
      (* The ledger is an independent path to the same totals. *)
      assert (b.Tracing.aborts = r.Runner.aborts);
      assert (b.Tracing.by_reason = r.Runner.abort_mix);
      Report.print
        (Tracing.breakdown_table
           ~title:
             (Printf.sprintf "%s — %d cycles, commit rate %.1f%%"
                sysconf.Sysconf.name r.Runner.cycles
                (100.0 *. r.Runner.commit_rate))
           b);
      last := Some (sysconf.Sysconf.name, ledger))
    [ Sysconf.baseline; Sysconf.lockiller_rwi; Sysconf.lockiller ];
  (match !last with
  | Some (name, ledger) ->
    let file = Filename.temp_file "lockiller_" "_trace.json" in
    Tracing.write_perfetto ~file ledger;
    Printf.printf
      "Perfetto timeline of the %s run written to %s\n\
     \  (open in https://ui.perfetto.dev — one track per core, aborted\n\
     \  attempts as abort:<reason> slices)\n\n" name file
  | None -> ());
  Printf.printf
    "Baseline shows the best-effort failure modes: mutex aborts (fallback-lock\n\
     subscription) on top of memory conflicts. Recovery (RWI) removes the\n\
     friendly-fire share; full LockillerTM also runs the fallback path as lock\n\
     transactions, so mutex aborts disappear and the residual mix is mc + lock.\n"
