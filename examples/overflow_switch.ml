(* The switchingMode mechanism in action: transactions whose write set
   overflows the L1. Best-effort HTM must abort and fall back; with
   switchingMode the running transaction switches to STL mode, keeps
   its work, and finishes irrevocably.

     dune exec examples/overflow_switch.exe *)

module Workload = Lockiller.Stamp.Workload
module Sysconf = Lockiller.Mechanisms.Sysconf
module Runner = Lockiller.Sim.Runner
module Config = Lockiller.Sim.Config

(* Read sets far beyond a 8KB L1 (128 lines): guaranteed overflow. *)
let overflowing =
  {
    Workload.name = "overflow-demo";
    txs_per_thread = 10;
    reads_per_tx = (150, 250);
    writes_per_tx = (10, 20);
    hot_lines = 64;
    hot_fraction = 0.15;
    zipf_skew = 0.3;
    shared_lines = 4096;
    private_lines = 128;
    compute_per_op = 1;
    pre_compute = (20, 60);
    post_compute = (20, 60);
    fault_prob = 0.0;
    barrier_every = None;
  }

let () =
  let threads = 4 in
  let machine = Config.machine ~cache:Config.Small () in
  Printf.printf
    "Overflowing transactions (150-250 lines read) on an 8KB L1, %d threads\n\n"
    threads;
  Printf.printf "%-18s %9s %9s %8s %9s %9s %8s\n" "system" "cycles"
    "commits" "of-aborts" "switches" "stl-commits" "spills";
  List.iter
    (fun sysconf ->
      let options = { Runner.default_options with machine } in
      let r = Runner.run ~options ~sysconf ~workload:overflowing ~threads () in
      let of_aborts =
        List.assoc Lockiller.Htm.Reason.Capacity r.Runner.abort_mix
      in
      Printf.printf "%-18s %9d %9d %8d %9d %9d %8d\n" r.Runner.system
        r.Runner.cycles
        (r.Runner.htm_commits + r.Runner.stl_commits + r.Runner.lock_commits)
        of_aborts r.Runner.switches_granted r.Runner.stl_commits
        r.Runner.spilled_lines)
    [ Sysconf.baseline; Sysconf.lockiller_rwil; Sysconf.lockiller ];
  print_newline ();
  Printf.printf
    "LockillerTM-RWIL still aborts on overflow (capacity aborts, then the\n\
     fallback lock); full LockillerTM switches mid-flight to STL mode and\n\
     spills the overflowed lines into the LLC signatures instead.\n"
