(* Utilization timeline from the telemetry sampler. Runs one contended
   workload with the periodic sampler attached (Runner.options.telemetry),
   then renders each core's execution-phase strip and two machine gauges
   straight from the Timeseries rings — the same data behind
   `lockiller_sim top` and the Perfetto counter tracks — and closes with
   the always-on latency histograms.

     dune exec examples/utilization_timeline.exe *)

module Runner = Lockiller.Sim.Runner
module Telemetry = Lockiller.Sim.Telemetry
module Timeseries = Lockiller.Engine.Timeseries
module Stats = Lockiller.Engine.Stats
module Suite = Lockiller.Stamp.Suite
module Sysconf = Lockiller.Mechanisms.Sysconf
module Runtime = Lockiller.Mechanisms.Runtime

let workload = "yada"
let threads = 4
let interval = 512

(* One glyph per Runtime.phase_code: non-tx, HTM, STL/TL, lock-held,
   parked, aborting. *)
let phase_char = function
  | 0 -> '.'
  | 1 -> 'H'
  | 2 -> 'S'
  | 3 -> 'L'
  | 4 -> 'p'
  | 5 -> 'a'
  | _ -> '?'

let spark_ramp = " .:-=+*#"

let sparkline ring ~channel =
  let n = Timeseries.length ring in
  let hi = ref 1 in
  for i = 0 to n - 1 do
    hi := max !hi (Timeseries.get ring ~sample:i ~channel)
  done;
  let buf = Bytes.create n in
  for i = 0 to n - 1 do
    let v = Timeseries.get ring ~sample:i ~channel in
    let idx = v * (String.length spark_ramp - 1) / !hi in
    Bytes.set buf i spark_ramp.[idx]
  done;
  (Bytes.to_string buf, !hi)

let () =
  let w = Option.get (Suite.find workload) in
  let tele = ref None in
  let r =
    Runner.run
      ~options:
        {
          Runner.default_options with
          scale = 0.2;
          machine = Lockiller.Sim.Config.machine ~cores:4 ();
          telemetry =
            Some (Runner.telemetry_request ~interval (fun t -> tele := Some t));
        }
      ~sysconf:Sysconf.lockiller ~workload:w ~threads ()
  in
  let t = Option.get !tele in
  let phases = Telemetry.phases t in
  let n = Timeseries.length phases in
  Printf.printf
    "Utilization timeline: %s, %d threads on %s — one column every %d\n\
     cycles (%d samples over %d cycles, %d htm / %d stl / %d lock commits).\n\n"
    workload threads Sysconf.lockiller.Sysconf.name interval n r.Runner.cycles
    r.Runner.htm_commits r.Runner.stl_commits r.Runner.lock_commits;
  (* Per-core phase strips: what each core was doing at every sample. *)
  for core = 0 to Timeseries.width phases - 1 do
    let buf = Bytes.create n in
    for i = 0 to n - 1 do
      Bytes.set buf i
        (phase_char (Timeseries.get phases ~sample:i ~channel:core))
    done;
    Printf.printf "core %d  %s\n" core (Bytes.to_string buf)
  done;
  Printf.printf "        phases: . non-tx  H htm  S stl  L lock  p parked  a aborting\n\n";
  (* Two machine-wide gauges as sparklines over the same sample grid. *)
  let gauges = Telemetry.gauges t in
  List.iter
    (fun name ->
      let channel =
        Option.get (List.find_index (String.equal name) Telemetry.gauge_channels)
      in
      let line, hi = sparkline gauges ~channel in
      Printf.printf "%-12s %s (max %d)\n" name line hi)
    [ "lock_holders"; "queue_depth" ];
  (* The always-on latency histograms the sampler exports alongside the
     rings; the runner surfaces tx_latency's percentiles in the result. *)
  Printf.printf "\nlatency histograms (cycles):\n";
  List.iter
    (fun (name, h) ->
      Printf.printf "  %-12s n=%-4d p50=%-6d p95=%-6d p99=%-6d max=%d\n" name
        (Stats.hdr_count h)
        (Stats.percentile h 50.0)
        (Stats.percentile h 95.0)
        (Stats.percentile h 99.0)
        (Option.value ~default:0 (Stats.hdr_max h)))
    (Telemetry.histograms t);
  assert (r.Runner.tx_latency_p50 = Stats.percentile (List.assoc "tx_latency" (Telemetry.histograms t)) 50.0)
