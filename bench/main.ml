(* Benchmark harness.

   Default: regenerate every table and figure of the paper's evaluation
   (one section per artefact; see DESIGN.md's experiment index) and
   finish with Bechamel microbenchmarks of the simulator's hot paths.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- fig7 fig12   # selected experiments
     dune exec bench/main.exe -- --micro      # microbenchmarks only
     dune exec bench/main.exe -- --list       # list experiment ids
     dune exec bench/main.exe -- --scale 0.5  # smaller workloads
     dune exec bench/main.exe -- --csv out/   # also write CSVs
     dune exec bench/main.exe -- --jobs 8     # parallel simulations
     dune exec bench/main.exe -- --no-cache   # ignore the result cache
     dune exec bench/main.exe -- --cache-dir d  # cache location *)

module Experiments = Lockiller.Sim.Experiments
module Report = Lockiller.Sim.Report
module Rng = Lockiller.Engine.Rng
module Event_queue = Lockiller.Engine.Event_queue
module Sim = Lockiller.Engine.Sim
module Topology = Lockiller.Mesh.Topology
module Network = Lockiller.Mesh.Network
module L1 = Lockiller.Coherence.L1_cache
module Protocol = Lockiller.Coherence.Protocol
module Types = Lockiller.Coherence.Types
module Signature = Lockiller.Mechanisms.Signature
module Sysconf = Lockiller.Mechanisms.Sysconf
module Runner = Lockiller.Sim.Runner
module Cache = Lockiller.Sim.Cache
module Pool = Lockiller.Sim.Pool

(* --- Paper experiments -------------------------------------------------- *)

let run_experiments ~scale ~jobs ~cache ~csv_dir ~ids =
  let ctx = Experiments.make_context ~scale ~jobs ?cache () in
  let emit_csv table =
    match csv_dir with
    | None -> ()
    | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir (Report.csv_filename table) in
      let oc = open_out path in
      output_string oc (Report.to_csv table);
      close_out oc;
      Printf.printf "(csv: %s)\n" path
  in
  let selected =
    match ids with
    | [] -> Experiments.all
    | ids ->
      List.filter_map
        (fun id ->
          match Experiments.find id with
          | Some e -> Some e
          | None ->
            Printf.eprintf "unknown experiment %S (skipped)\n%!" id;
            None)
        ids
  in
  List.iter
    (fun e ->
      Printf.printf "# %s (%s)\n# %s\n\n" e.Experiments.artefact
        e.Experiments.id e.Experiments.describe;
      let t0 = Sys.time () in
      List.iter
        (fun table ->
          Report.print table;
          emit_csv table)
        (Experiments.execute ctx e);
      Printf.printf "(rendered in %.1fs cpu)\n\n%!" (Sys.time () -. t0))
    selected;
  (* Observability for the warm-cache acceptance check: a second run of
     the same experiments must report 0 simulations. *)
  (match cache with
  | None ->
    Printf.printf "(simulations: %d, cache disabled)\n%!"
      (Experiments.simulations ctx)
  | Some c ->
    Printf.printf "(simulations: %d, cache hits: %d, stores: %d)\n%!"
      (Experiments.simulations ctx) (Cache.hits c) (Cache.stores c);
    Cache.persist_counters c)

(* --- Bechamel microbenchmarks ------------------------------------------- *)

open Bechamel
open Toolkit

let test_event_queue =
  Test.make ~name:"event-queue push+pop x256"
    (Staged.stage (fun () ->
         let q = Event_queue.create () in
         for i = 0 to 255 do
           Event_queue.add q ~time:((i * 7919) land 1023) i
         done;
         let rec drain () =
           match Event_queue.pop q with None -> () | Some _ -> drain ()
         in
         drain ()))

let test_rng_zipf =
  let rng = Rng.create 7 in
  Test.make ~name:"rng zipf draw (n=64, s=0.8)"
    (Staged.stage (fun () -> ignore (Rng.zipf rng ~n:64 ~s:0.8)))

let test_l1_lookup =
  let l1 = L1.create ~size_bytes:(32 * 1024) ~ways:4 in
  for i = 0 to 127 do
    L1.insert l1 i L1.S
  done;
  let counter = ref 0 in
  Test.make ~name:"l1 lookup (hit)"
    (Staged.stage (fun () ->
         counter := (!counter + 1) land 127;
         ignore (L1.lookup l1 !counter)))

let test_signature =
  let s = Signature.create () in
  let counter = ref 0 in
  Test.make ~name:"signature add+test"
    (Staged.stage (fun () ->
         incr counter;
         Signature.add s !counter;
         ignore (Signature.test s !counter)))

let test_route =
  let topo = Topology.create ~rows:4 ~cols:8 in
  let counter = ref 0 in
  Test.make ~name:"mesh x-y route (corner to corner)"
    (Staged.stage (fun () ->
         counter := (!counter + 1) land 31;
         ignore (Topology.route topo ~src:!counter ~dst:31)))

let test_protocol_access =
  Test.make ~name:"protocol access (cold miss, 4 cores)"
    (Staged.stage (fun () ->
         let sim = Sim.create () in
         let net = Network.create (Topology.create ~rows:2 ~cols:2) in
         let cfg =
           {
             Protocol.cores = 4;
             l1_size = 4 * 1024;
             l1_ways = 4;
             l1_hit_latency = 2;
             llc_size = 64 * 1024;
             llc_ways = 8;
             llc_hit_latency = 12;
             mem_latency = 100;
      exclusive_state = true;
      dir_pointers = None;
           }
         in
         let p = Protocol.create ~sim ~network:net cfg in
         Protocol.access p ~core:0 ~line:5 ~what:Types.Read ~epoch:0
           ~k:(fun _ -> ());
         Sim.run sim))

let test_full_sim =
  Test.make ~name:"full kmeans+ run (LockillerTM, 4 threads, scale 0.2)"
    (Staged.stage (fun () ->
         match Lockiller.Stamp.Suite.find "kmeans+" with
         | None -> assert false
         | Some w ->
           ignore
             (Runner.run ~scale:0.2
                ~machine:(Lockiller.Sim.Config.machine ~cores:4 ())
                ~sysconf:Sysconf.lockiller ~workload:w ~threads:4 ())))

let microbenchmarks =
  [
    test_event_queue;
    test_rng_zipf;
    test_l1_lookup;
    test_signature;
    test_route;
    test_protocol_access;
    test_full_sim;
  ]

let run_micro () =
  Printf.printf "# Microbenchmarks (simulator hot paths)\n\n%!";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols instance raw in
          match Analyze.OLS.estimates est with
          | Some [ ns ] -> Printf.printf "%-55s %12.1f ns/run\n%!" name ns
          | Some _ | None -> Printf.printf "%-55s (no estimate)\n%!" name)
        results)
    microbenchmarks

(* --- entry point --------------------------------------------------------- *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let scale = ref 1.0 in
  let micro_only = ref false in
  let skip_micro = ref false in
  let csv_dir = ref None in
  let jobs = ref (Pool.default_jobs ()) in
  let no_cache = ref false in
  let cache_dir = ref None in
  let ids = ref [] in
  let rec parse = function
    | [] -> ()
    | "--micro" :: rest ->
      micro_only := true;
      parse rest
    | "--no-micro" :: rest ->
      skip_micro := true;
      parse rest
    | "--list" :: _ ->
      List.iter
        (fun e ->
          Printf.printf "%-10s %s\n" e.Experiments.id e.Experiments.artefact)
        Experiments.all;
      exit 0
    | "--scale" :: v :: rest ->
      scale := float_of_string v;
      parse rest
    | "--jobs" :: v :: rest ->
      jobs := max 1 (int_of_string v);
      parse rest
    | "--no-cache" :: rest ->
      no_cache := true;
      parse rest
    | "--cache-dir" :: dir :: rest ->
      cache_dir := Some dir;
      parse rest
    | "--csv" :: dir :: rest ->
      csv_dir := Some dir;
      parse rest
    | id :: rest ->
      ids := !ids @ [ id ];
      parse rest
  in
  parse args;
  if not !micro_only then begin
    let cache =
      if !no_cache then None
      else
        Some
          (Cache.create
             ~dir:
               (match !cache_dir with
               | Some d -> d
               | None -> Cache.default_dir ())
             ())
    in
    run_experiments ~scale:!scale ~jobs:!jobs ~cache ~csv_dir:!csv_dir
      ~ids:!ids
  end;
  if (not !skip_micro) && !ids = [] then run_micro ()
