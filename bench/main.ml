(* Benchmark harness.

   Default: regenerate every table and figure of the paper's evaluation
   (one section per artefact; see DESIGN.md's experiment index) and
   finish with Bechamel microbenchmarks of the simulator's hot paths.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- fig7 fig12   # selected experiments
     dune exec bench/main.exe -- --micro      # microbenchmarks only
     dune exec bench/main.exe -- --micro --format json   # BENCH_micro.json
     dune exec bench/main.exe -- --list       # list experiment ids
     dune exec bench/main.exe -- --scale 0.5  # smaller workloads
     dune exec bench/main.exe -- --csv out/   # also write CSVs
     dune exec bench/main.exe -- --jobs 8     # parallel simulations
     dune exec bench/main.exe -- --no-cache   # ignore the result cache
     dune exec bench/main.exe -- --cache-dir d  # cache location
     dune exec bench/main.exe -- --trace-events trace.json
                                              # one traced reference run *)

module Experiments = Lockiller.Sim.Experiments
module Report = Lockiller.Sim.Report
module Rng = Lockiller.Engine.Rng
module Event_queue = Lockiller.Engine.Event_queue
module Sim = Lockiller.Engine.Sim
module Pdes = Lockiller.Engine.Pdes
module Topology = Lockiller.Mesh.Topology
module Network = Lockiller.Mesh.Network
module L1 = Lockiller.Coherence.L1_cache
module Protocol = Lockiller.Coherence.Protocol
module Shard = Lockiller.Coherence.Shard
module Types = Lockiller.Coherence.Types
module Signature = Lockiller.Mechanisms.Signature
module Sysconf = Lockiller.Mechanisms.Sysconf
module Runner = Lockiller.Sim.Runner
module Cache = Lockiller.Sim.Cache
module Pool = Lockiller.Sim.Pool
module Perf = Lockiller.Sim.Perf
module Json = Lockiller.Sim.Json

(* [Sys.mkdir] is non-recursive: --csv out/nested/dir used to fail. *)
let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
  end

(* --- Paper experiments -------------------------------------------------- *)

let run_experiments ~scale ~jobs ~cache ~csv_dir ~ids =
  let ctx = Experiments.make_context ~scale ~jobs ?cache () in
  let emit_csv table =
    match csv_dir with
    | None -> ()
    | Some dir ->
      mkdir_p dir;
      let path = Filename.concat dir (Report.csv_filename table) in
      let oc = open_out path in
      output_string oc (Report.to_csv table);
      close_out oc;
      Printf.printf "(csv: %s)\n" path
  in
  let selected =
    match ids with
    | [] -> Experiments.all
    | ids ->
      List.filter_map
        (fun id ->
          match Experiments.find id with
          | Some e -> Some e
          | None ->
            Printf.eprintf "unknown experiment %S (skipped)\n%!" id;
            None)
        ids
  in
  List.iter
    (fun e ->
      Printf.printf "# %s (%s)\n# %s\n\n" e.Experiments.artefact
        e.Experiments.id e.Experiments.describe;
      let t0 = Sys.time () in
      Perf.reset_totals ();
      List.iter
        (fun table ->
          Report.print table;
          emit_csv table)
        (Experiments.execute ctx e);
      Printf.printf "(rendered in %.1fs cpu)\n" (Sys.time () -. t0);
      (* Throughput over the simulations this experiment actually ran
         (warm-cache runs report 0 sims). Wall time varies run to run,
         so `make ci`'s cold/warm diff filters "perf:" lines out. *)
      Printf.printf "(perf: %s)\n\n%!"
        (Format.asprintf "%a" Perf.pp_totals (Perf.totals ())))
    selected;
  (* Observability for the warm-cache acceptance check: a second run of
     the same experiments must report 0 simulations. *)
  (match cache with
  | None ->
    Printf.printf "(simulations: %d, cache disabled)\n%!"
      (Experiments.simulations ctx)
  | Some c ->
    Printf.printf "(simulations: %d, cache hits: %d, stores: %d)\n%!"
      (Experiments.simulations ctx) (Cache.hits c) (Cache.stores c);
    Cache.persist_counters c)

(* --- Perf microbenchmark: schedule/pop throughput, wheel vs heap -------- *)

let backend_id = function
  | Event_queue.Wheel -> "wheel"
  | Event_queue.Heap -> "heap"

(* Deterministic delay stream (no global RNG) matching the simulator's
   profile: mostly short latencies (L1 hits, NoC hops — 1..256 cycles),
   with 1 in 64 a long one (up to ~4k, past the wheel's 1024-cycle near
   window, exercising the far-heap overflow path). *)
let lcg_next st =
  st := (!st * 0x2545F4914F6CDD1D) + 0x9E3779B9;
  let r = !st lsr 33 in
  if r land 63 = 0 then 1 + (r land 4095) else 1 + (r land 255)

(* Hold model on the raw queue: [resident] pending events; every pop
   reschedules its payload a pseudo-random delay ahead, so occupancy
   stays constant and the probe sees pure schedule/pop steady state.
   Uses the allocation-free next_time/pop_payload pair like the kernel
   does. *)
let queue_micro ~backend ~ops =
  let q = Event_queue.create ~backend () in
  let resident = 8192 in
  let st = ref 0x3779B97F4A7C15 in
  for i = 0 to resident - 1 do
    Event_queue.add q ~time:(lcg_next st) i
  done;
  let probe = Perf.start () in
  let clock = ref 0 in
  for _ = 1 to ops do
    let t = Event_queue.next_time q in
    let v = Event_queue.pop_payload q in
    clock := t;
    Event_queue.add q ~time:(t + lcg_next st) v
  done;
  Perf.stop probe ~events:ops ~cycles:!clock

(* The same steady state through the kernel: 1024 self-rescheduling
   event chains until ~[ops] events have fired. *)
let sim_micro ~backend ~ops =
  let sim = Sim.create ~backend () in
  let st = ref 0x51AFE2149F123BCD in
  let remaining = ref ops in
  let rec tick () =
    if !remaining > 0 then begin
      decr remaining;
      Sim.schedule sim ~delay:(lcg_next st) tick
    end
  in
  for _ = 1 to 1024 do
    Sim.schedule sim ~delay:(lcg_next st) tick
  done;
  let (), s = Perf.observe sim (fun () -> Sim.run sim) in
  s

(* Trace ingestion: streaming read throughput over a generated binary
   trace. Written once to a temp file, then measured over a full
   streaming read pass (header + varint decode + monotonicity check),
   the same path 'lockiller_sim replay' feeds from. *)
let trace_micro ~ops =
  let module Gen = Lockiller.Trace.Gen in
  let module Stream = Lockiller.Trace.Stream in
  let profile = { Gen.default with duration = max 1 ops } in
  let file = Filename.temp_file "lockiller_bench" ".lkt" in
  Fun.protect ~finally:(fun () -> Sys.remove file) @@ fun () ->
  let oc = open_out_bin file in
  let w = Stream.writer_to_channel Stream.Binary oc in
  let n =
    match
      Gen.generate profile ~seed:1 ~emit:(fun r ->
          match Stream.write w r with Ok () -> () | Error e -> failwith e)
    with
    | Ok n -> n
    | Error e -> failwith e
  in
  close_out oc;
  let read_pass () =
    let ic = open_in_bin file in
    Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
    match Stream.reader_of_channel ~name:file ic with
    | Error e -> failwith e
    | Ok r -> (
      let probe = Perf.start () in
      match
        Stream.fold r ~init:0 ~f:(fun _ rec_ ->
            rec_.Lockiller.Trace.Record.arrival)
      with
      | Error e -> failwith e
      | Ok last -> Perf.stop probe ~events:n ~cycles:last)
  in
  (* First run warms code and minor heap; report the second. *)
  ignore (read_pass ());
  read_pass ()

(* The parallel executor on a partition-confined workload: [domains]
   partitions of self-rescheduling chains (1 in 64 events hops to the
   next partition with a delay >= the lookahead, as the conservative
   contract requires). Events/sec here is *aggregate* across domains;
   wall-clock speedup over d1 needs real cores — the "cpus" field in
   the JSON records what parallelism was physically available, and on
   a single-CPU host the curve is flat by construction. *)
let pdes_micro ~domains ~ops =
  let lookahead = 16 in
  let once () =
    let p = Pdes.create ~domains ~lookahead () in
    let per = ops / domains in
    (* Per-partition state, indexed by partition id: each slot is only
       ever touched by the domain that owns the partition. *)
    let remaining = Array.make domains per in
    let sts =
      Array.init domains (fun i -> ref (0x51AFE2149F123BCD + (i * 7919)))
    in
    let rec tick port =
      let me = Pdes.id port in
      if remaining.(me) > 0 then begin
        remaining.(me) <- remaining.(me) - 1;
        let d = lookahead + lcg_next sts.(me) in
        if domains > 1 && remaining.(me) land 63 = 0 then
          Pdes.post port ~dst:((me + 1) mod domains) ~delay:d tick
        else Pdes.schedule port ~delay:d tick
      end
    in
    for i = 0 to domains - 1 do
      let port = Pdes.port p i in
      for _ = 1 to 256 do
        Pdes.schedule port ~delay:(lcg_next sts.(i)) tick
      done
    done;
    let probe = Perf.start () in
    Pdes.run p;
    let cycles = ref 0 in
    for i = 0 to domains - 1 do
      let n = Pdes.now (Pdes.port p i) in
      if n > !cycles then cycles := n
    done;
    Perf.stop probe ~events:(Pdes.total_events p) ~cycles:!cycles
  in
  (* First run warms code and minor heap; report the second. *)
  ignore (once ());
  once ()

(* Closed-loop machine throughput as the mesh grows: the same 16
   threads and offered work on a 32-core and a 256-core machine, so
   the only variable is the fabric — more directory shards, longer NoC
   distances, a larger partitioned event set. The events/sec ratio is
   the kernel's large-mesh scaling figure (docs/SCALING.md). *)
let machine_micro ~cores =
  match Lockiller.Stamp.Suite.find "ssca2" with
  | None -> assert false
  | Some w ->
    let machine = Lockiller.Sim.Config.machine ~cores () in
    let options =
      { Runner.default_options with machine; oracle = false; scale = 0.25 }
    in
    let once () =
      Perf.reset_totals ();
      ignore
        (Runner.run ~options ~sysconf:Sysconf.lockiller ~workload:w
           ~threads:16 ());
      let t = Perf.totals () in
      {
        Perf.wall_seconds = t.Perf.total_wall_seconds;
        minor_words = t.Perf.total_minor_words;
        events = t.Perf.total_events;
        cycles = t.Perf.total_cycles;
      }
    in
    ignore (once ());
    once ()

(* The partition-ownership race detector priced on the big mesh: the
   same closed-loop 256-core run as [machine_micro], split over 4
   event-queue partitions, detector off and on. A witness hook is one
   flag test when the detector is off and an ownership compare when
   on, so the two samples must stay inside the perfcheck band — the
   "detector_on_speedup" ratio is the gate on the detector's overhead
   (docs/CHECKING.md). The on-sample also re-asserts zero violations:
   --race-check fails the run on any finding. *)
let race_micro ~race_check =
  match Lockiller.Stamp.Suite.find "ssca2" with
  | None -> assert false
  | Some w ->
    let machine = Lockiller.Sim.Config.machine ~cores:256 () in
    let options =
      {
        Runner.default_options with
        machine;
        oracle = false;
        scale = 0.25;
        pdes_domains = 4;
        race_check;
      }
    in
    let once () =
      Perf.reset_totals ();
      ignore
        (Runner.run ~options ~sysconf:Sysconf.lockiller ~workload:w
           ~threads:16 ());
      let t = Perf.totals () in
      {
        Perf.wall_seconds = t.Perf.total_wall_seconds;
        minor_words = t.Perf.total_minor_words;
        events = t.Perf.total_events;
        cycles = t.Perf.total_cycles;
      }
    in
    ignore (once ());
    once ()

(* The causal profiler priced on a contended closed-loop run, off and
   on. "On" attaches the event ledger with the streaming Profile tap
   (the `profile` subcommand's configuration); the emit path is int
   packing into preallocated arrays plus an allocation-free tap call,
   so both samples must stay inside the perfcheck band — the
   "profiler_on_speedup" ratio is the gate on observation overhead
   (docs/OBSERVABILITY.md). *)
let profile_micro ~profiled =
  let module Runtime = Lockiller.Mechanisms.Runtime in
  let module Profile = Lockiller.Sim.Profile in
  match Lockiller.Stamp.Suite.find "intruder" with
  | None -> assert false
  | Some w ->
    let options =
      {
        Runner.default_options with
        oracle = false;
        scale = 0.25;
        on_runtime =
          (fun rt ->
            if profiled then begin
              let l = Runtime.enable_ledger rt in
              let p = Profile.create ~cores:32 in
              Profile.attach p l
            end);
      }
    in
    let once () =
      Perf.reset_totals ();
      ignore
        (Runner.run ~options ~sysconf:Sysconf.lockiller ~workload:w
           ~threads:16 ());
      let t = Perf.totals () in
      {
        Perf.wall_seconds = t.Perf.total_wall_seconds;
        minor_words = t.Perf.total_minor_words;
        events = t.Perf.total_events;
        cycles = t.Perf.total_cycles;
      }
    in
    ignore (once ());
    once ()

(* The TL2 software path under contention: the maximally-contended
   counter microbenchmark on SW-TL2 runs every transaction through the
   software fallback (no HTM attempts), so the sample prices the
   fallback itself — version-clock traffic, read-set validation,
   commit-time write locks (docs/HYBRID.md). *)
let swpath_micro () =
  match Lockiller.Stamp.Suite.find "micro-counter" with
  | None -> assert false
  | Some w ->
    let options =
      { Runner.default_options with oracle = false; scale = 0.25 }
    in
    let once () =
      Perf.reset_totals ();
      ignore
        (Runner.run ~options ~sysconf:Sysconf.sw_tl2 ~workload:w ~threads:8 ());
      let t = Perf.totals () in
      {
        Perf.wall_seconds = t.Perf.total_wall_seconds;
        minor_words = t.Perf.total_minor_words;
        events = t.Perf.total_events;
        cycles = t.Perf.total_cycles;
      }
    in
    ignore (once ());
    once ()

let bench_micro_file = "BENCH_micro.json"

let run_perf_micro ~scale ~format =
  (* Floored at 1M ops: minor-words/event carries a fixed setup-sized
     overhead that only amortises out at the baseline's operating
     point, so `--scale 0.1` must not shrink the micro below it. *)
  let ops = max 1_000_000 (int_of_float (1_000_000. *. scale)) in
  let measure micro backend =
    (* First run warms code and minor heap; report the second. *)
    ignore (micro ~backend ~ops);
    micro ~backend ~ops
  in
  let qw = measure queue_micro Event_queue.Wheel in
  let qh = measure queue_micro Event_queue.Heap in
  let sw = measure sim_micro Event_queue.Wheel in
  let sh = measure sim_micro Event_queue.Heap in
  let tr = trace_micro ~ops in
  let p1 = pdes_micro ~domains:1 ~ops in
  let p2 = pdes_micro ~domains:2 ~ops in
  let p4 = pdes_micro ~domains:4 ~ops in
  let m32 = machine_micro ~cores:32 in
  let m256 = machine_micro ~cores:256 in
  let roff = race_micro ~race_check:false in
  let ron = race_micro ~race_check:true in
  let poff = profile_micro ~profiled:false in
  let pon = profile_micro ~profiled:true in
  let sp = swpath_micro () in
  let cpus = Domain.recommended_domain_count () in
  let speedup w h =
    let h = Perf.events_per_sec h in
    if h <= 0.0 then 0.0 else Perf.events_per_sec w /. h
  in
  match format with
  | `Json ->
    let section w h =
      Json.Obj
        [
          ("wheel", Perf.json_of_sample w);
          ("heap", Perf.json_of_sample h);
          ("wheel_speedup", Json.Float (speedup w h));
        ]
    in
    let j =
      Json.Obj
        [
          ("schema", Json.Int 1);
          ("ops", Json.Int ops);
          ("queue", section qw qh);
          ("sim", section sw sh);
          ("trace", Json.Obj [ ("read", Perf.json_of_sample tr) ]);
          ( "pdes",
            Json.Obj
              [
                ("cpus", Json.Int cpus);
                ("lookahead", Json.Int 16);
                ("d1", Perf.json_of_sample p1);
                ("d2", Perf.json_of_sample p2);
                ("d4", Perf.json_of_sample p4);
                ("parallel_speedup", Json.Float (speedup p4 p1));
              ] );
          ( "mesh",
            Json.Obj
              [
                ("threads", Json.Int 16);
                ("cores32", Perf.json_of_sample m32);
                ("cores256", Perf.json_of_sample m256);
                ("large_mesh_speedup", Json.Float (speedup m256 m32));
              ] );
          ( "race",
            Json.Obj
              [
                ("threads", Json.Int 16);
                ("off", Perf.json_of_sample roff);
                ("on", Perf.json_of_sample ron);
                ("detector_on_speedup", Json.Float (speedup ron roff));
              ] );
          ( "profile",
            Json.Obj
              [
                ("threads", Json.Int 16);
                ("off", Perf.json_of_sample poff);
                ("on", Perf.json_of_sample pon);
                ("profiler_on_speedup", Json.Float (speedup pon poff));
              ] );
          ( "swpath",
            Json.Obj
              [ ("threads", Json.Int 8); ("sw_tl2", Perf.json_of_sample sp) ]
          );
        ]
    in
    let oc = open_out bench_micro_file in
    output_string oc (Json.to_string_pretty j);
    output_char oc '\n';
    close_out oc;
    Printf.printf "(micro: %s)\n%!" bench_micro_file
  | `Text ->
    Printf.printf "# Event-engine throughput (%d ops, wheel vs heap)\n\n" ops;
    Printf.printf "%-8s %-8s %14s %16s\n" "section" "backend" "events/sec"
      "minor w/event";
    List.iter
      (fun (section, backend, s) ->
        Printf.printf "%-8s %-8s %14.0f %16.2f\n" section (backend_id backend)
          (Perf.events_per_sec s)
          (Perf.minor_words_per_event s))
      [
        ("queue", Event_queue.Wheel, qw);
        ("queue", Event_queue.Heap, qh);
        ("sim", Event_queue.Wheel, sw);
        ("sim", Event_queue.Heap, sh);
      ];
    Printf.printf "%-8s %-8s %14.0f %16.2f\n" "trace" "read"
      (Perf.events_per_sec tr)
      (Perf.minor_words_per_event tr);
    List.iter
      (fun (label, s) ->
        Printf.printf "%-8s %-8s %14.0f %16.2f\n" "pdes" label
          (Perf.events_per_sec s)
          (Perf.minor_words_per_event s))
      [ ("d1", p1); ("d2", p2); ("d4", p4) ];
    List.iter
      (fun (label, s) ->
        Printf.printf "%-8s %-8s %14.0f %16.2f\n" "mesh" label
          (Perf.events_per_sec s)
          (Perf.minor_words_per_event s))
      [ ("32", m32); ("256", m256) ];
    List.iter
      (fun (label, s) ->
        Printf.printf "%-8s %-8s %14.0f %16.2f\n" "race" label
          (Perf.events_per_sec s)
          (Perf.minor_words_per_event s))
      [ ("off", roff); ("on", ron) ];
    List.iter
      (fun (label, s) ->
        Printf.printf "%-8s %-8s %14.0f %16.2f\n" "profile" label
          (Perf.events_per_sec s)
          (Perf.minor_words_per_event s))
      [ ("off", poff); ("on", pon) ];
    Printf.printf "%-8s %-8s %14.0f %16.2f\n" "swpath" "sw_tl2"
      (Perf.events_per_sec sp)
      (Perf.minor_words_per_event sp);
    Printf.printf "\nqueue wheel speedup over heap: %.2fx\n" (speedup qw qh);
    Printf.printf "sim   wheel speedup over heap: %.2fx\n" (speedup sw sh);
    Printf.printf "pdes  4-domain aggregate over 1: %.2fx (%d cpus)\n" (speedup p4 p1)
      cpus;
    Printf.printf "mesh  256-core over 32-core:     %.2fx\n" (speedup m256 m32);
    Printf.printf "race  detector on over off:      %.2fx\n\n%!"
      (speedup ron roff)

(* --- Traced reference run ----------------------------------------------- *)

(* One observability-instrumented simulation (the acceptance scenario:
   LockillerTM / genome / 8 threads) with the event ledger on, exported
   as a Chrome/Perfetto trace plus the abort breakdown on stdout.
   Always uncached: the on_runtime hook would be unsound to cache. *)
let run_traced ~scale ~file =
  let module Runtime = Lockiller.Mechanisms.Runtime in
  let module Tracing = Lockiller.Sim.Tracing in
  let module Ledger = Lockiller.Engine.Ledger in
  match Lockiller.Stamp.Suite.find "genome" with
  | None -> assert false
  | Some w ->
    let handle = ref None in
    let r =
      Runner.run
        ~options:
          {
            Runner.default_options with
            scale;
            on_runtime =
              (fun rt ->
                handle := Some rt;
                ignore (Runtime.enable_ledger rt));
          }
        ~sysconf:Sysconf.lockiller ~workload:w ~threads:8 ()
    in
    (match Option.map Runtime.ledger !handle with
    | Some (Some l) ->
      Tracing.write_perfetto ~file l;
      Printf.printf "(trace-events: %s, %d events, %d dropped)\n" file
        (Ledger.length l) (Ledger.dropped l);
      Report.print (Tracing.breakdown_table (Tracing.abort_breakdown l))
    | Some None | None -> assert false);
    Printf.printf "(traced run: %d cycles, commit rate %.1f%%)\n%!"
      r.Runner.cycles
      (100.0 *. r.Runner.commit_rate)

(* --- Bechamel microbenchmarks ------------------------------------------- *)

open Bechamel
open Toolkit

let test_event_queue =
  Test.make ~name:"event-queue push+pop x256"
    (Staged.stage (fun () ->
         let q = Event_queue.create () in
         for i = 0 to 255 do
           Event_queue.add q ~time:((i * 7919) land 1023) i
         done;
         let rec drain () =
           match Event_queue.pop q with None -> () | Some _ -> drain ()
         in
         drain ()))

let test_rng_zipf =
  let rng = Rng.create 7 in
  Test.make ~name:"rng zipf draw (n=64, s=0.8)"
    (Staged.stage (fun () -> ignore (Rng.zipf rng ~n:64 ~s:0.8)))

let test_l1_lookup =
  let l1 = L1.create ~size_bytes:(32 * 1024) ~ways:4 in
  for i = 0 to 127 do
    L1.insert l1 i L1.S
  done;
  let counter = ref 0 in
  Test.make ~name:"l1 lookup (hit)"
    (Staged.stage (fun () ->
         counter := (!counter + 1) land 127;
         ignore (L1.lookup l1 !counter)))

let test_signature =
  let s = Signature.create () in
  let counter = ref 0 in
  Test.make ~name:"signature add+test"
    (Staged.stage (fun () ->
         incr counter;
         Signature.add s !counter;
         ignore (Signature.test s !counter)))

let test_route =
  let topo = Topology.create ~rows:4 ~cols:8 in
  let counter = ref 0 in
  Test.make ~name:"mesh x-y route (corner to corner)"
    (Staged.stage (fun () ->
         counter := (!counter + 1) land 31;
         ignore (Topology.route topo ~src:!counter ~dst:31)))

let test_protocol_access =
  Test.make ~name:"protocol access (cold miss, 4 cores)"
    (Staged.stage (fun () ->
         let sim = Sim.create () in
         let net = Network.create (Topology.create ~rows:2 ~cols:2) in
         let cfg =
           {
             Protocol.cores = 4;
             l1_size = 4 * 1024;
             l1_ways = 4;
             l1_hit_latency = 2;
             llc_size = 64 * 1024;
             llc_ways = 8;
             llc_hit_latency = 12;
             mem_latency = 100;
      exclusive_state = true;
      dir_pointers = None;
      dir_shards = 0;
      dir_hash = Shard.Mod;
           }
         in
         let p = Protocol.create ~sim ~network:net cfg in
         Protocol.access p ~core:0 ~line:5 ~what:Types.Read ~epoch:0
           ~k:(fun _ -> ());
         Sim.run sim))

let test_full_sim =
  Test.make ~name:"full kmeans+ run (LockillerTM, 4 threads, scale 0.2)"
    (Staged.stage (fun () ->
         match Lockiller.Stamp.Suite.find "kmeans+" with
         | None -> assert false
         | Some w ->
           ignore
             (Runner.run
                ~options:
                  {
                    Runner.default_options with
                    scale = 0.2;
                    machine = Lockiller.Sim.Config.machine ~cores:4 ();
                  }
                ~sysconf:Sysconf.lockiller ~workload:w ~threads:4 ())))

let microbenchmarks =
  [
    test_event_queue;
    test_rng_zipf;
    test_l1_lookup;
    test_signature;
    test_route;
    test_protocol_access;
    test_full_sim;
  ]

let run_micro () =
  Printf.printf "# Microbenchmarks (simulator hot paths)\n\n%!";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols instance raw in
          match Analyze.OLS.estimates est with
          | Some [ ns ] -> Printf.printf "%-55s %12.1f ns/run\n%!" name ns
          | Some _ | None -> Printf.printf "%-55s (no estimate)\n%!" name)
        results)
    microbenchmarks

(* --- entry point --------------------------------------------------------- *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let scale = ref 1.0 in
  let micro_only = ref false in
  let skip_micro = ref false in
  let format = ref `Text in
  let csv_dir = ref None in
  let jobs = ref (Pool.default_jobs ()) in
  let no_cache = ref false in
  let cache_dir = ref None in
  let trace_events = ref None in
  let ids = ref [] in
  let rec parse = function
    | [] -> ()
    | "--micro" :: rest ->
      micro_only := true;
      parse rest
    | "--no-micro" :: rest ->
      skip_micro := true;
      parse rest
    | "--list" :: _ ->
      List.iter
        (fun e ->
          Printf.printf "%-10s %s\n" e.Experiments.id e.Experiments.artefact)
        Experiments.all;
      exit 0
    | "--format" :: v :: rest ->
      (match v with
      | "text" -> format := `Text
      | "json" -> format := `Json
      | _ ->
        Printf.eprintf "unknown --format %S (want text or json)\n%!" v;
        exit 2);
      parse rest
    | "--scale" :: v :: rest ->
      scale := float_of_string v;
      parse rest
    | "--jobs" :: v :: rest ->
      (match Lockiller.Sim.Cli.positive_int ~what:"--jobs" v with
      | Ok j -> jobs := j
      | Error msg ->
        Printf.eprintf "%s\n%!" msg;
        exit 2);
      parse rest
    | "--no-cache" :: rest ->
      no_cache := true;
      parse rest
    | "--cache-dir" :: dir :: rest ->
      cache_dir := Some dir;
      parse rest
    | "--csv" :: dir :: rest ->
      csv_dir := Some dir;
      parse rest
    | "--trace-events" :: file :: rest ->
      trace_events := Some file;
      parse rest
    | id :: rest ->
      ids := !ids @ [ id ];
      parse rest
  in
  parse args;
  (match !trace_events with
  | Some file ->
    run_traced ~scale:!scale ~file;
    exit 0
  | None -> ());
  if !micro_only then begin
    run_perf_micro ~scale:!scale ~format:!format;
    if !format = `Text then run_micro ();
    exit 0
  end;
  begin
    let cache =
      if !no_cache then None
      else
        Some
          (Cache.create
             ~dir:
               (match !cache_dir with
               | Some d -> d
               | None -> Cache.default_dir ())
             ())
    in
    run_experiments ~scale:!scale ~jobs:!jobs ~cache ~csv_dir:!csv_dir
      ~ids:!ids
  end;
  if (not !skip_micro) && !ids = [] then run_micro ()
