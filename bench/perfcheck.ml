(* Perf regression gate: compare a fresh BENCH_micro.json against the
   committed bench/baseline.json.

   Usage: perfcheck.exe [CURRENT] [BASELINE] [--tolerance F]
                        [--wall-tolerance F]
   (defaults: BENCH_micro.json bench/baseline.json 2.0 / 3.0)

   The baseline is walked recursively; only metric leaves are compared,
   with a tolerance band per metric family so the gate trips on real
   regressions (wrong data structure, reintroduced boxing), not
   machine noise:

   - higher-is-better ("events_per_sec", "*speedup"): wall-clock
     throughput, the noisy family — on a loaded or CPU-stealing host a
     benign run can land 2-2.5x under an idle-host baseline, so these
     use the wider --wall-tolerance (default 3.0): fail when the
     current value drops below baseline / wall-tolerance. The real
     regressions this family exists to catch (losing the wheel fast
     path, a broken bucket chain) cost 4x and more;
   - lower-is-better ("minor_words_per_event"): allocation per event
     is deterministic — GC counters, not clocks — so these keep the
     tight --tolerance (default 2.0): fail when the current value
     exceeds baseline * tolerance + 0.5 words of absolute slack
     (the baselines sit near zero, where a ratio alone is
     meaningless).

   Everything else in the files (wall times, raw counters) is
   informational and ignored. *)

module Json = Lockiller.Sim.Json

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let load path =
  let ic = try open_in path with Sys_error e -> die "perfcheck: %s" e in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Json.of_string s with
  | Ok j -> j
  | Error e -> die "perfcheck: %s: %s" path e

let higher_better key =
  key = "events_per_sec"
  || String.length key >= 7
     && String.sub key (String.length key - 7) 7 = "speedup"

let lower_better key = key = "minor_words_per_event"

let failures = ref 0
let checks = ref 0

let check ~tol ~wall_tol path key baseline current =
  incr checks;
  let fail what limit =
    incr failures;
    Printf.printf "FAIL %-32s %12.3f vs baseline %12.3f (%s %.3f)\n" path
      current baseline what limit
  in
  if higher_better key then begin
    let floor = baseline /. wall_tol in
    if current < floor then fail "floor" floor
    else Printf.printf "ok   %-32s %12.3f (baseline %12.3f)\n" path current baseline
  end
  else begin
    let ceiling = (baseline *. tol) +. 0.5 in
    if current > ceiling then fail "ceiling" ceiling
    else Printf.printf "ok   %-32s %12.3f (baseline %12.3f)\n" path current baseline
  end

(* Recurse through objects; metric comparison is keyed on the member
   name of numeric leaves. *)
let rec walk ~tol ~wall_tol path key baseline current =
  match (baseline, current) with
  | Json.Obj members, _ ->
    List.iter
      (fun (k, bv) ->
        let sub = if path = "" then k else path ^ "." ^ k in
        match Json.member k current with
        | Ok cv -> walk ~tol ~wall_tol sub k bv cv
        | Error _ ->
          if higher_better k || lower_better k then
            die "perfcheck: current results lack %s" sub)
      members
  | (Json.Int _ | Json.Float _), _
    when higher_better key || lower_better key -> (
    match (Json.to_float baseline, Json.to_float current) with
    | Ok b, Ok c -> check ~tol ~wall_tol path key b c
    | _ -> die "perfcheck: %s is not numeric in both files" path)
  | _ -> ()

let () =
  let current = ref "BENCH_micro.json" in
  let baseline = ref (Filename.concat "bench" "baseline.json") in
  let tol = ref 2.0 in
  let wall_tol = ref 3.0 in
  let positional = ref 0 in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: v :: rest ->
      tol := float_of_string v;
      parse rest
    | "--wall-tolerance" :: v :: rest ->
      wall_tol := float_of_string v;
      parse rest
    | arg :: rest ->
      (match !positional with
      | 0 -> current := arg
      | 1 -> baseline := arg
      | _ -> die "perfcheck: unexpected argument %S" arg);
      incr positional;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let b = load !baseline and c = load !current in
  Printf.printf "# perfcheck: %s vs %s (tolerance %.1fx alloc, %.1fx wall)\n\n"
    !current !baseline !tol !wall_tol;
  walk ~tol:!tol ~wall_tol:!wall_tol "" "" b c;
  if !checks = 0 then die "perfcheck: no metrics found in %s" !baseline;
  if !failures > 0 then die "\nperfcheck: %d of %d metrics regressed" !failures !checks;
  Printf.printf "\nperfcheck: %d metrics within tolerance\n" !checks
